/**
 * @file
 * Periodic-structure analysis of a DecodedTrace.
 *
 * Every Livermore trace is dominated by exact repetitions of a small
 * loop body: the same opcodes, registers, latencies and dependence
 * shape recur with a fixed stride.  detectPeriods() finds those
 * repetitions once per DecodedTrace so the timing simulators can
 * recognize iteration boundaries and, once their architectural state
 * repeats from one boundary to the next, close the remaining
 * iterations by exact extrapolation instead of simulating them (see
 * sim/steady_state.hh).
 *
 * A segment is anchored at taken branches (the loop back-edges): a
 * maximal run of equally spaced taken branches whose between-branch
 * op sequences are identical — same per-op signature (opcode, unit
 * class, flags, latency, occupancy, registers) and compatible
 * dependence links.  Two corresponding links are compatible when
 * both are absent, both shift by exactly one period, or both name
 * the same fixed pre-segment producer (a loop-invariant value).
 *
 * Nested loops with varying inner trip counts (LL6's triangular
 * kernel) decompose into many short segments, one per inner run;
 * singly nested kernels (LL7, LL13, LL14, ...) yield one segment
 * covering almost the whole trace.
 *
 * Hierarchical periodicity: segments whose steady-state bodies are
 * identical — same period, same per-op signatures, same normalized
 * link shape — share a *family* id.  A nested loop's inner runs are
 * all one family, so a simulator that confirmed steady state in one
 * run can trust a first state match in the next run of the same
 * family immediately (see sim/steady_state.hh): the outer loop level
 * is exploited through the families of its inner segments.
 */

#ifndef MFUSIM_DATAFLOW_PERIOD_DETECTOR_HH
#define MFUSIM_DATAFLOW_PERIOD_DETECTOR_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mfusim/core/decoded_trace.hh"

namespace mfusim
{

/**
 * One maximal run of identical trace periods.
 *
 * Ops [base, base + period * count) are `count` repetitions of the
 * same `period`-op body, each ending with a taken branch.  The
 * "boundaries" base + k*period (k = 0..count) each sit immediately
 * after a taken branch — the natural points for a simulator to
 * compare architectural state across iterations.
 */
struct TraceSegment
{
    std::size_t base = 0;       //!< first op of the first period
    std::size_t period = 0;     //!< ops per period
    std::size_t count = 0;      //!< number of complete periods

    /**
     * Dependence horizon: every in-segment producer link of a
     * steady-state op reaches back at most this many ops (and at
     * least one full period, so the final period's results cover
     * every register the body writes).
     */
    std::size_t lookback = 0;

    /** Non-branch ops per period (RUU insert-counter advance). */
    std::size_t inserts = 0;

    /**
     * Body-equivalence class: segments of one trace with the same
     * period and identical steady-state bodies (per-op signatures
     * and normalized dependence-link shape) carry the same family
     * id.  Ids are dense indices in discovery order.  The nested
     * levels of a hierarchically periodic trace (LL6) surface as
     * many segments of one family.
     */
    std::uint32_t family = 0;

    /**
     * Fixed pre-segment producers: ops before base() that remain the
     * program-order producer of some operand in *every* period
     * (loop-invariant values).  Sorted ascending.
     */
    std::vector<std::uint32_t> ancients;

    /** One past the last op of the last complete period. */
    std::size_t end() const { return base + period * count; }
};

/** All periodic segments of one trace, disjoint and ascending. */
struct TracePeriodicity
{
    std::vector<TraceSegment> segments;
    /** Total ops covered by segments (diagnostics / tests). */
    std::uint64_t coveredOps = 0;
};

/**
 * Analyze @p trace.  Deterministic, O(trace size); segments shorter
 * than two periods are not reported (with a single period there is
 * no boundary pair whose state could ever match).  Two-period
 * segments still matter: once their family's steady state was
 * confirmed in an earlier segment, the tracker skips their second
 * period after one match.
 */
TracePeriodicity detectPeriods(const DecodedTrace &trace);

} // namespace mfusim

#endif // MFUSIM_DATAFLOW_PERIOD_DETECTOR_HH
