/**
 * @file
 * Macro-assembler implementation.
 */

#include "mfusim/codegen/assembler.hh"

#include <bit>
#include <cassert>
#include <sstream>
#include <stdexcept>

namespace mfusim
{

namespace
{

[[maybe_unused]] bool
isA(RegId r)
{
    return isValidReg(r) && classOf(r) == RegClass::A;
}

[[maybe_unused]] bool
isS(RegId r)
{
    return isValidReg(r) && classOf(r) == RegClass::S;
}

[[maybe_unused]] bool
isB(RegId r)
{
    return isValidReg(r) && classOf(r) == RegClass::B;
}

[[maybe_unused]] bool
isT(RegId r)
{
    return isValidReg(r) && classOf(r) == RegClass::T;
}

[[maybe_unused]] bool
isV(RegId r)
{
    return isValidReg(r) && classOf(r) == RegClass::V;
}

} // namespace

std::string
Program::disassemble() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < code.size(); ++i)
        os << i << ":\t" << code[i].disassemble() << '\n';
    return os.str();
}

Assembler::Label
Assembler::newLabel()
{
    labelTargets_.push_back(-1);
    return Label{ int(labelTargets_.size()) - 1 };
}

void
Assembler::bind(Label label)
{
    assert(label.id >= 0 && label.id < int(labelTargets_.size()));
    assert(labelTargets_[label.id] == -1 && "label bound twice");
    labelTargets_[label.id] = std::int64_t(code_.size());
}

Assembler::Label
Assembler::here()
{
    Label label = newLabel();
    bind(label);
    return label;
}

void
Assembler::emit(const Instruction &inst)
{
    code_.push_back(inst);
}

void
Assembler::emitBranch(Op op, RegId cond, Label target)
{
    assert(target.id >= 0 && target.id < int(labelTargets_.size()));
    fixups_.emplace_back(StaticIndex(code_.size()), target.id);
    emit({ op, kNoReg, cond, kNoReg, 0 });
}

// ---- address-register operations ----------------------------------

void
Assembler::aconst(RegId dst, std::int64_t value)
{
    assert(isA(dst));
    emit({ Op::kAConst, dst, kNoReg, kNoReg, value });
}

void
Assembler::aadd(RegId dst, RegId srcA, RegId srcB)
{
    assert(isA(dst) && isA(srcA) && isA(srcB));
    emit({ Op::kAAdd, dst, srcA, srcB, 0 });
}

void
Assembler::aaddi(RegId dst, RegId srcA, std::int64_t imm)
{
    assert(isA(dst) && isA(srcA));
    emit({ Op::kAAddI, dst, srcA, kNoReg, imm });
}

void
Assembler::asub(RegId dst, RegId srcA, RegId srcB)
{
    assert(isA(dst) && isA(srcA) && isA(srcB));
    emit({ Op::kASub, dst, srcA, srcB, 0 });
}

void
Assembler::amul(RegId dst, RegId srcA, RegId srcB)
{
    assert(isA(dst) && isA(srcA) && isA(srcB));
    emit({ Op::kAMul, dst, srcA, srcB, 0 });
}

void
Assembler::amovs(RegId dst, RegId src)
{
    assert(isA(dst) && isS(src));
    emit({ Op::kAMovS, dst, src, kNoReg, 0 });
}

void
Assembler::amovb(RegId dst, RegId src)
{
    assert(isA(dst) && isB(src));
    emit({ Op::kAMovB, dst, src, kNoReg, 0 });
}

void
Assembler::bmova(RegId dst, RegId src)
{
    assert(isB(dst) && isA(src));
    emit({ Op::kBMovA, dst, src, kNoReg, 0 });
}

// ---- scalar-register operations ------------------------------------

void
Assembler::sconsti(RegId dst, std::int64_t value)
{
    assert(isS(dst));
    emit({ Op::kSConst, dst, kNoReg, kNoReg, value });
}

void
Assembler::sconstf(RegId dst, double value)
{
    assert(isS(dst));
    emit({ Op::kSConst, dst, kNoReg, kNoReg,
           std::bit_cast<std::int64_t>(value) });
}

void
Assembler::sadd(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kSAdd, dst, srcA, srcB, 0 });
}

void
Assembler::ssub(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kSSub, dst, srcA, srcB, 0 });
}

void
Assembler::sand_(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kSAnd, dst, srcA, srcB, 0 });
}

void
Assembler::sor_(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kSOr, dst, srcA, srcB, 0 });
}

void
Assembler::sxor_(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kSXor, dst, srcA, srcB, 0 });
}

void
Assembler::sshl(RegId dst, RegId src, unsigned count)
{
    assert(isS(dst) && isS(src) && count < 64);
    emit({ Op::kSShL, dst, src, kNoReg, std::int64_t(count) });
}

void
Assembler::sshr(RegId dst, RegId src, unsigned count)
{
    assert(isS(dst) && isS(src) && count < 64);
    emit({ Op::kSShR, dst, src, kNoReg, std::int64_t(count) });
}

void
Assembler::smovs(RegId dst, RegId src)
{
    assert(isS(dst) && isS(src));
    emit({ Op::kSMovS, dst, src, kNoReg, 0 });
}

void
Assembler::smova(RegId dst, RegId src)
{
    assert(isS(dst) && isA(src));
    emit({ Op::kSMovA, dst, src, kNoReg, 0 });
}

void
Assembler::smovt(RegId dst, RegId src)
{
    assert(isS(dst) && isT(src));
    emit({ Op::kSMovT, dst, src, kNoReg, 0 });
}

void
Assembler::tmovs(RegId dst, RegId src)
{
    assert(isT(dst) && isS(src));
    emit({ Op::kTMovS, dst, src, kNoReg, 0 });
}

// ---- floating point -------------------------------------------------

void
Assembler::fadd(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kFAdd, dst, srcA, srcB, 0 });
}

void
Assembler::fsub(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kFSub, dst, srcA, srcB, 0 });
}

void
Assembler::fmul(RegId dst, RegId srcA, RegId srcB)
{
    assert(isS(dst) && isS(srcA) && isS(srcB));
    emit({ Op::kFMul, dst, srcA, srcB, 0 });
}

void
Assembler::frecip(RegId dst, RegId src)
{
    assert(isS(dst) && isS(src));
    emit({ Op::kFRecip, dst, src, kNoReg, 0 });
}

void
Assembler::sfix(RegId dst, RegId src)
{
    assert(isS(dst) && isS(src));
    emit({ Op::kSFix, dst, src, kNoReg, 0 });
}

void
Assembler::sfloat(RegId dst, RegId src)
{
    assert(isS(dst) && isS(src));
    emit({ Op::kSFloat, dst, src, kNoReg, 0 });
}

void
Assembler::fdiv(RegId dst, RegId num, RegId den, RegId tmpA, RegId tmpB)
{
    // CRAY-1 full-precision divide: r = recip(den);
    // r' = r * (2 - den * r); dst = num * r'.  The Interpreter's
    // frecip is already exact, so the correction step exists purely
    // to reproduce the instruction mix of a real CRAY divide.
    assert(tmpA != tmpB && tmpA != num && tmpB != num &&
           tmpA != den && tmpB != den);
    // dst doubles as scratch for the 2.0 constant before the final
    // multiply, so it must not alias an input.
    assert(dst != num && dst != den && dst != tmpA && dst != tmpB);
    frecip(tmpA, den);              // tmpA = ~1/den
    fmul(tmpB, den, tmpA);          // tmpB = den * r
    sconstf(dst, 2.0);              // dst used as scratch for 2.0
    fsub(tmpB, dst, tmpB);          // tmpB = 2 - den * r
    fmul(tmpA, tmpA, tmpB);         // tmpA = corrected reciprocal
    fmul(dst, num, tmpA);           // dst = num / den
}

// ---- vector unit ------------------------------------------------------

void
Assembler::vsetlen(RegId srcA)
{
    assert(isA(srcA));
    emit({ Op::kVSetLen, kVlReg, srcA, kNoReg, 0 });
}

void
Assembler::vload(RegId dst, RegId base, std::int64_t stride)
{
    assert(isV(dst) && isA(base) && stride != 0);
    emit({ Op::kVLoad, dst, base, kNoReg, stride });
}

void
Assembler::vstore(RegId base, std::int64_t stride, RegId src)
{
    assert(isA(base) && isV(src) && stride != 0);
    emit({ Op::kVStore, kNoReg, base, src, stride });
}

void
Assembler::vfadd(RegId dst, RegId srcA, RegId srcB)
{
    assert(isV(dst) && isV(srcA) && isV(srcB));
    emit({ Op::kVFAdd, dst, srcA, srcB, 0 });
}

void
Assembler::vfsub(RegId dst, RegId srcA, RegId srcB)
{
    assert(isV(dst) && isV(srcA) && isV(srcB));
    emit({ Op::kVFSub, dst, srcA, srcB, 0 });
}

void
Assembler::vfmul(RegId dst, RegId srcA, RegId srcB)
{
    assert(isV(dst) && isV(srcA) && isV(srcB));
    emit({ Op::kVFMul, dst, srcA, srcB, 0 });
}

void
Assembler::vfaddsv(RegId dst, RegId srcS, RegId srcV)
{
    assert(isV(dst) && isS(srcS) && isV(srcV));
    emit({ Op::kVFAddSV, dst, srcS, srcV, 0 });
}

void
Assembler::vfmulsv(RegId dst, RegId srcS, RegId srcV)
{
    assert(isV(dst) && isS(srcS) && isV(srcV));
    emit({ Op::kVFMulSV, dst, srcS, srcV, 0 });
}

// ---- memory ----------------------------------------------------------

void
Assembler::loadA(RegId dst, RegId base, std::int64_t disp)
{
    assert(isA(dst) && isA(base));
    emit({ Op::kLoadA, dst, base, kNoReg, disp });
}

void
Assembler::loadS(RegId dst, RegId base, std::int64_t disp)
{
    assert(isS(dst) && isA(base));
    emit({ Op::kLoadS, dst, base, kNoReg, disp });
}

void
Assembler::storeA(RegId base, std::int64_t disp, RegId src)
{
    assert(isA(base) && isA(src));
    emit({ Op::kStoreA, kNoReg, base, src, disp });
}

void
Assembler::storeS(RegId base, std::int64_t disp, RegId src)
{
    assert(isA(base) && isS(src));
    emit({ Op::kStoreS, kNoReg, base, src, disp });
}

// ---- control ----------------------------------------------------------

void
Assembler::braz(Label target)
{
    emitBranch(Op::kBrAZ, A0, target);
}

void
Assembler::branz(Label target)
{
    emitBranch(Op::kBrANZ, A0, target);
}

void
Assembler::brap(Label target)
{
    emitBranch(Op::kBrAP, A0, target);
}

void
Assembler::bram(Label target)
{
    emitBranch(Op::kBrAM, A0, target);
}

void
Assembler::brsz(Label target)
{
    emitBranch(Op::kBrSZ, S0, target);
}

void
Assembler::brsnz(Label target)
{
    emitBranch(Op::kBrSNZ, S0, target);
}

void
Assembler::brsp(Label target)
{
    emitBranch(Op::kBrSP, S0, target);
}

void
Assembler::brsm(Label target)
{
    emitBranch(Op::kBrSM, S0, target);
}

void
Assembler::jump(Label target)
{
    emitBranch(Op::kJump, kNoReg, target);
}

void
Assembler::halt()
{
    emit({ Op::kHalt, kNoReg, kNoReg, kNoReg, 0 });
}

StaticIndex
Assembler::position() const
{
    return StaticIndex(code_.size());
}

Program
Assembler::finish()
{
    for (const auto &[inst_idx, label_id] : fixups_) {
        const std::int64_t target = labelTargets_[label_id];
        if (target < 0) {
            throw std::logic_error(
                "Assembler::finish: unbound label referenced by "
                "instruction " + std::to_string(inst_idx));
        }
        code_[inst_idx].imm = target;
    }
    fixups_.clear();

    Program program;
    program.code = std::move(code_);
    code_.clear();
    return program;
}

} // namespace mfusim
