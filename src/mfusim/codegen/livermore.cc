/**
 * @file
 * Livermore loop dispatch, synthetic data, and validation.
 */

#include "mfusim/codegen/livermore.hh"

#include <cmath>
#include <stdexcept>

#include "mfusim/codegen/interpreter.hh"
#include "mfusim/codegen/kernels/kernels.hh"

namespace mfusim
{

const std::vector<KernelSpec> &
kernelSpecs()
{
    static const std::vector<KernelSpec> specs = {
        { 1, "hydro fragment", true },
        { 2, "ICCG excerpt", true },
        { 3, "inner product", true },
        { 4, "banded linear equations", true },
        { 5, "tri-diagonal elimination", false },
        { 6, "general linear recurrence", false },
        { 7, "equation of state fragment", true },
        { 8, "ADI integration", true },
        { 9, "integrate predictors", true },
        { 10, "difference predictors", true },
        { 11, "first sum", false },
        { 12, "first difference", true },
        { 13, "2-D particle in cell", false },
        { 14, "1-D particle in cell", false },
    };
    return specs;
}

const std::vector<int> &
scalarLoopIds()
{
    static const std::vector<int> ids = { 5, 6, 11, 13, 14 };
    return ids;
}

const std::vector<int> &
vectorizableLoopIds()
{
    static const std::vector<int> ids = { 1, 2, 3, 4, 7, 8, 9, 10, 12 };
    return ids;
}

Kernel
buildKernel(int id)
{
    using namespace kernels;
    switch (id) {
      case 1: return buildLoop01();
      case 2: return buildLoop02();
      case 3: return buildLoop03();
      case 4: return buildLoop04();
      case 5: return buildLoop05();
      case 6: return buildLoop06();
      case 7: return buildLoop07();
      case 8: return buildLoop08();
      case 9: return buildLoop09();
      case 10: return buildLoop10();
      case 11: return buildLoop11();
      case 12: return buildLoop12();
      case 13: return buildLoop13();
      case 14: return buildLoop14();
      default:
        throw std::invalid_argument(
            "buildKernel: loop id must be 1..14, got " +
            std::to_string(id));
    }
}

double
kernelValue(int kernelId, std::uint64_t index, double lo, double hi)
{
    // splitmix64 over (kernelId, index)
    std::uint64_t z =
        (std::uint64_t(kernelId) << 32) + index + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    const double unit = double(z >> 11) * 0x1.0p-53;    // [0, 1)
    return lo + unit * (hi - lo);
}

KernelRun
runKernel(const Kernel &kernel, std::string traceName)
{
    Interpreter interp(kernel.program, kernel.memWords);
    for (const MemValF &cell : kernel.initF)
        interp.pokeMemF(cell.addr, cell.value);
    for (const MemValI &cell : kernel.initI)
        interp.pokeMem(cell.addr, std::uint64_t(cell.value));

    if (traceName.empty())
        traceName = std::string("LL") + std::to_string(kernel.spec.id);

    KernelRun run;
    run.trace = interp.run(std::move(traceName));

    for (const MemValF &cell : kernel.expectF) {
        run.checkedCells++;
        const double got = interp.peekMemF(cell.addr);
        const double want = cell.value;
        const double mag = std::max(std::fabs(want), 1e-30);
        const double rel = std::fabs(got - want) / mag;
        run.maxRelError = std::max(run.maxRelError, rel);
        if (!(rel < 1e-9))
            run.mismatches++;
    }
    for (const MemValI &cell : kernel.expectI) {
        run.checkedCells++;
        if (std::int64_t(interp.peekMem(cell.addr)) != cell.value)
            run.mismatches++;
    }
    return run;
}

DynTrace
traceKernel(int id)
{
    const Kernel kernel = buildKernel(id);
    KernelRun run = runKernel(kernel);
    if (run.mismatches != 0) {
        throw std::runtime_error(
            "traceKernel: loop " + std::to_string(id) + " failed " +
            std::to_string(run.mismatches) + " of " +
            std::to_string(run.checkedCells) + " reference checks");
    }
    return std::move(run.trace);
}

} // namespace mfusim
