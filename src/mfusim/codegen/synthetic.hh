/**
 * @file
 * Synthetic dependence-structure workloads.
 *
 * ILP limit studies use controlled structures alongside real code:
 * each generator below produces a dynamic trace with one dependence
 * property pushed to an extreme, so a machine's response isolates
 * one mechanism (issue blocking, renaming, unit throughput, memory
 * pipelining, branch gating).  The analytic issue-rate limits of
 * these traces are known in closed form and pinned by unit tests.
 */

#ifndef MFUSIM_CODEGEN_SYNTHETIC_HH
#define MFUSIM_CODEGEN_SYNTHETIC_HH

#include <cstddef>

#include "mfusim/core/trace.hh"

namespace mfusim
{
namespace synthetic
{

/**
 * A pure serial chain: op i reads op i-1's result.
 * Dataflow width 1; every machine is latency-bound.
 */
DynTrace chain(std::size_t n, Op op = Op::kFAdd);

/**
 * n mutually independent operations of one class, destinations
 * rotating through S1..S7 (so WAW reuse appears every 7 ops).
 * Bound by the unit's 1/cycle throughput — and, on machines without
 * renaming, by the WAW recycle distance.
 */
DynTrace independent(std::size_t n, Op op = Op::kFAdd);

/**
 * A balanced binary reduction tree: `leaves` inputs (loads) combined
 * pairwise by fadds.  Dataflow width halves per level; total depth
 * is logarithmic.  @p leaves must be a power of two, >= 2.
 */
DynTrace reductionTree(unsigned leaves);

/**
 * Every instruction writes the same register and none reads another:
 * nothing is data dependent, everything is WAW dependent.
 * Alternating multiply (7 cycles) and logical (1 cycle) ops make the
 * hazard bite: a blocking machine holds each logical op on the
 * previous multiply's register reservation, while renaming machines
 * run at full unit speed.
 */
DynTrace wawStorm(std::size_t n);

/**
 * A memory stream: @p loadPercent% loads / rest stores, all
 * independent, addresses from rotating A registers.  Bound by the
 * memory port (1/cycle interleaved; latency-serialized when the
 * memory is serial).
 */
DynTrace memoryStream(std::size_t n, unsigned loadPercent = 70);

/**
 * A counted loop: @p iters iterations of @p bodyOps independent
 * 1-cycle ops plus a decrement and a taken backward branch (the
 * last iteration falls through).  Issue rate is branch-gated:
 * the dataflow limit is (bodyOps + 2) / (branch chain per
 * iteration).
 */
DynTrace loopPattern(std::size_t bodyOps, std::size_t iters);

} // namespace synthetic
} // namespace mfusim

#endif // MFUSIM_CODEGEN_SYNTHETIC_HH
