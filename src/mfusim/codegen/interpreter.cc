/**
 * @file
 * Functional interpreter implementation.
 */

#include "mfusim/codegen/interpreter.hh"

#include <bit>
#include <stdexcept>
#include <string>

namespace mfusim
{

namespace
{

double
asF(std::uint64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::uint64_t
asBits(double value)
{
    return std::bit_cast<std::uint64_t>(value);
}

std::int64_t
asI(std::uint64_t bits)
{
    return std::bit_cast<std::int64_t>(bits);
}

std::uint64_t
fromI(std::int64_t value)
{
    return std::bit_cast<std::uint64_t>(value);
}

} // namespace

Interpreter::Interpreter(const Program &program, std::size_t memWords)
    : program_(program), memory_(memWords, 0)
{
}

void
Interpreter::pokeMem(std::uint64_t addr, std::uint64_t bits)
{
    memory_.at(addr) = bits;
}

void
Interpreter::pokeMemF(std::uint64_t addr, double value)
{
    memory_.at(addr) = asBits(value);
}

std::uint64_t
Interpreter::peekMem(std::uint64_t addr) const
{
    return memory_.at(addr);
}

double
Interpreter::peekMemF(std::uint64_t addr) const
{
    return asF(memory_.at(addr));
}

double
Interpreter::peekSF(unsigned i) const
{
    return asF(sRegs_[i]);
}

double
Interpreter::peekVF(unsigned i, unsigned k) const
{
    return vRegs_.at(i).at(k);
}

std::uint64_t
Interpreter::loadWord(std::int64_t addr) const
{
    if (addr < 0 || std::uint64_t(addr) >= memory_.size()) {
        throw std::runtime_error(
            "Interpreter: load out of bounds at address " +
            std::to_string(addr));
    }
    return memory_[std::size_t(addr)];
}

void
Interpreter::storeWord(std::int64_t addr, std::uint64_t bits)
{
    if (addr < 0 || std::uint64_t(addr) >= memory_.size()) {
        throw std::runtime_error(
            "Interpreter: store out of bounds at address " +
            std::to_string(addr));
    }
    memory_[std::size_t(addr)] = bits;
}

DynTrace
Interpreter::run(std::string traceName, std::uint64_t maxDynOps)
{
    DynTrace trace(std::move(traceName));

    const auto aVal = [this](RegId r) -> std::int64_t {
        switch (classOf(r)) {
          case RegClass::A:
            return aRegs_[indexOf(r)];
          case RegClass::B:
            return bRegs_[indexOf(r)];
          default:
            throw std::runtime_error("Interpreter: A-value from S/T reg");
        }
    };
    const auto sVal = [this](RegId r) -> std::uint64_t {
        switch (classOf(r)) {
          case RegClass::S:
            return sRegs_[indexOf(r)];
          case RegClass::T:
            return tRegs_[indexOf(r)];
          default:
            throw std::runtime_error("Interpreter: S-value from A/B reg");
        }
    };

    StaticIndex pc = 0;
    std::uint64_t executed = 0;

    while (true) {
        if (pc >= program_.size())
            throw std::runtime_error("Interpreter: PC escaped program");
        if (executed >= maxDynOps)
            throw std::runtime_error("Interpreter: dynamic op limit hit");

        const Instruction &inst = program_[pc];
        if (inst.op == Op::kHalt)
            break;

        ++executed;
        DynOp dyn{ inst.op, inst.dst, inst.srcA, inst.srcB, pc, false,
                   false };

        StaticIndex next_pc = pc + 1;
        bool is_branch = false;
        bool taken = false;

        switch (inst.op) {
          // ---- address ops ------------------------------------------
          case Op::kAConst:
            aRegs_[indexOf(inst.dst)] = inst.imm;
            break;
          case Op::kAAdd:
            aRegs_[indexOf(inst.dst)] =
                aVal(inst.srcA) + aVal(inst.srcB);
            break;
          case Op::kAAddI:
            aRegs_[indexOf(inst.dst)] = aVal(inst.srcA) + inst.imm;
            break;
          case Op::kASub:
            aRegs_[indexOf(inst.dst)] =
                aVal(inst.srcA) - aVal(inst.srcB);
            break;
          case Op::kAMul:
            aRegs_[indexOf(inst.dst)] =
                aVal(inst.srcA) * aVal(inst.srcB);
            break;
          case Op::kAMovS:
            aRegs_[indexOf(inst.dst)] = asI(sVal(inst.srcA));
            break;
          case Op::kAMovB:
            aRegs_[indexOf(inst.dst)] = bRegs_[indexOf(inst.srcA)];
            break;
          case Op::kBMovA:
            bRegs_[indexOf(inst.dst)] = aVal(inst.srcA);
            break;

          // ---- scalar integer / logical ops -------------------------
          case Op::kSConst:
            sRegs_[indexOf(inst.dst)] = fromI(inst.imm);
            break;
          case Op::kSAdd:
            sRegs_[indexOf(inst.dst)] =
                fromI(asI(sVal(inst.srcA)) + asI(sVal(inst.srcB)));
            break;
          case Op::kSSub:
            sRegs_[indexOf(inst.dst)] =
                fromI(asI(sVal(inst.srcA)) - asI(sVal(inst.srcB)));
            break;
          case Op::kSAnd:
            sRegs_[indexOf(inst.dst)] =
                sVal(inst.srcA) & sVal(inst.srcB);
            break;
          case Op::kSOr:
            sRegs_[indexOf(inst.dst)] =
                sVal(inst.srcA) | sVal(inst.srcB);
            break;
          case Op::kSXor:
            sRegs_[indexOf(inst.dst)] =
                sVal(inst.srcA) ^ sVal(inst.srcB);
            break;
          case Op::kSShL:
            sRegs_[indexOf(inst.dst)] =
                sVal(inst.srcA) << unsigned(inst.imm);
            break;
          case Op::kSShR:
            sRegs_[indexOf(inst.dst)] =
                sVal(inst.srcA) >> unsigned(inst.imm);
            break;
          case Op::kSMovS:
            sRegs_[indexOf(inst.dst)] = sVal(inst.srcA);
            break;
          case Op::kSMovA:
            sRegs_[indexOf(inst.dst)] = fromI(aVal(inst.srcA));
            break;
          case Op::kSMovT:
            sRegs_[indexOf(inst.dst)] = tRegs_[indexOf(inst.srcA)];
            break;
          case Op::kTMovS:
            tRegs_[indexOf(inst.dst)] = sVal(inst.srcA);
            break;

          // ---- floating point ---------------------------------------
          case Op::kFAdd:
            sRegs_[indexOf(inst.dst)] =
                asBits(asF(sVal(inst.srcA)) + asF(sVal(inst.srcB)));
            break;
          case Op::kFSub:
            sRegs_[indexOf(inst.dst)] =
                asBits(asF(sVal(inst.srcA)) - asF(sVal(inst.srcB)));
            break;
          case Op::kFMul:
            sRegs_[indexOf(inst.dst)] =
                asBits(asF(sVal(inst.srcA)) * asF(sVal(inst.srcB)));
            break;
          case Op::kFRecip:
            sRegs_[indexOf(inst.dst)] =
                asBits(1.0 / asF(sVal(inst.srcA)));
            break;
          case Op::kSFix:
            sRegs_[indexOf(inst.dst)] =
                fromI(std::int64_t(asF(sVal(inst.srcA))));
            break;
          case Op::kSFloat:
            sRegs_[indexOf(inst.dst)] =
                asBits(double(asI(sVal(inst.srcA))));
            break;

          // ---- memory -------------------------------------------------
          case Op::kLoadA:
            aRegs_[indexOf(inst.dst)] =
                asI(loadWord(aVal(inst.srcA) + inst.imm));
            break;
          case Op::kLoadS:
            sRegs_[indexOf(inst.dst)] =
                loadWord(aVal(inst.srcA) + inst.imm);
            break;
          case Op::kStoreA:
            storeWord(aVal(inst.srcA) + inst.imm,
                      fromI(aVal(inst.srcB)));
            break;
          case Op::kStoreS:
            storeWord(aVal(inst.srcA) + inst.imm, sVal(inst.srcB));
            break;

          // ---- vector unit (extension) ---------------------------------
          case Op::kVSetLen:
          {
              const std::int64_t requested = aVal(inst.srcA);
              if (requested < 1 ||
                  requested > std::int64_t(kVectorLength)) {
                  throw std::runtime_error(
                      "Interpreter: VL out of range: " +
                      std::to_string(requested));
              }
              vl_ = unsigned(requested);
              dyn.vl = std::uint8_t(vl_);
              break;
          }
          case Op::kVLoad:
          {
              const std::int64_t base = aVal(inst.srcA);
              auto &dst_v = vRegs_[indexOf(inst.dst)];
              for (unsigned k = 0; k < vl_; ++k) {
                  dst_v[k] = asF(loadWord(
                      base + std::int64_t(k) * inst.imm));
              }
              dyn.vl = std::uint8_t(vl_);
              break;
          }
          case Op::kVStore:
          {
              const std::int64_t base = aVal(inst.srcA);
              const auto &src_v = vRegs_[indexOf(inst.srcB)];
              for (unsigned k = 0; k < vl_; ++k) {
                  storeWord(base + std::int64_t(k) * inst.imm,
                            asBits(src_v[k]));
              }
              dyn.vl = std::uint8_t(vl_);
              break;
          }
          case Op::kVFAdd:
          case Op::kVFSub:
          case Op::kVFMul:
          {
              const auto &a = vRegs_[indexOf(inst.srcA)];
              const auto &b = vRegs_[indexOf(inst.srcB)];
              auto &dst_v = vRegs_[indexOf(inst.dst)];
              for (unsigned k = 0; k < vl_; ++k) {
                  dst_v[k] = inst.op == Op::kVFAdd ? a[k] + b[k] :
                      inst.op == Op::kVFSub ? a[k] - b[k] :
                                              a[k] * b[k];
              }
              dyn.vl = std::uint8_t(vl_);
              break;
          }
          case Op::kVFAddSV:
          case Op::kVFMulSV:
          {
              const double scalar = asF(sVal(inst.srcA));
              const auto &b = vRegs_[indexOf(inst.srcB)];
              auto &dst_v = vRegs_[indexOf(inst.dst)];
              for (unsigned k = 0; k < vl_; ++k) {
                  dst_v[k] = inst.op == Op::kVFAddSV ?
                      scalar + b[k] : scalar * b[k];
              }
              dyn.vl = std::uint8_t(vl_);
              break;
          }

          // ---- control -------------------------------------------------
          case Op::kBrAZ:
            is_branch = true;
            taken = aRegs_[0] == 0;
            break;
          case Op::kBrANZ:
            is_branch = true;
            taken = aRegs_[0] != 0;
            break;
          case Op::kBrAP:
            is_branch = true;
            taken = aRegs_[0] >= 0;
            break;
          case Op::kBrAM:
            is_branch = true;
            taken = aRegs_[0] < 0;
            break;
          case Op::kBrSZ:
            is_branch = true;
            taken = sRegs_[0] == 0;
            break;
          case Op::kBrSNZ:
            is_branch = true;
            taken = sRegs_[0] != 0;
            break;
          case Op::kBrSP:
            is_branch = true;
            taken = asI(sRegs_[0]) >= 0;
            break;
          case Op::kBrSM:
            is_branch = true;
            taken = asI(sRegs_[0]) < 0;
            break;
          case Op::kJump:
            is_branch = true;
            taken = true;
            break;
          case Op::kHalt:
          case Op::kNumOps:
            break;
        }

        if (is_branch) {
            dyn.taken = taken;
            dyn.backward = StaticIndex(inst.imm) <= pc;
            if (taken)
                next_pc = StaticIndex(inst.imm);
        }

        trace.append(dyn);
        pc = next_pc;
    }

    return trace;
}

} // namespace mfusim
