/**
 * @file
 * Reference kernel implementations.
 */

#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace ref
{

double
refDiv(double num, double den)
{
    const double r0 = 1.0 / den;
    const double corr = 2.0 - den * r0;
    const double r1 = r0 * corr;
    return num * r1;
}

void
loop1(std::vector<double> &x, const std::vector<double> &y,
      const std::vector<double> &z, double q, double r, double t, int n)
{
    for (int k = 0; k < n; ++k)
        x[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
}

void
loop2(std::vector<double> &x, const std::vector<double> &v, int n)
{
    int ii = n;
    int ipntp = 0;
    do {
        const int ipnt = ipntp;
        ipntp += ii;
        ii /= 2;
        int i = ipntp - 1;
        for (int k = ipnt + 1; k < ipntp; k += 2) {
            ++i;
            x[i] = (x[k] - v[k] * x[k - 1]) - v[k + 1] * x[k + 1];
        }
    } while (ii > 1);
}

double
loop3(const std::vector<double> &z, const std::vector<double> &x, int n)
{
    double q = 0.0;
    for (int k = 0; k < n; ++k)
        q += z[k] * x[k];
    return q;
}

void
loop4(std::vector<double> &x, const std::vector<double> &y, int n, int m)
{
    for (int k = 6; k < n; k += m) {
        int lw = k - 6;
        double temp = x[k - 1];
        for (int j = 4; j < n; j += 5) {
            temp -= x[lw] * y[j];
            ++lw;
        }
        x[k - 1] = y[4] * temp;
    }
}

void
loop5(std::vector<double> &x, const std::vector<double> &y,
      const std::vector<double> &z, int n)
{
    for (int i = 1; i < n; ++i)
        x[i] = z[i] * (y[i] - x[i - 1]);
}

void
loop6(std::vector<double> &w, const std::vector<double> &b, int n)
{
    for (int i = 1; i < n; ++i) {
        double s = 0.01;
        for (int k = 0; k < i; ++k)
            s += b[std::size_t(k) * n + i] * w[(i - k) - 1];
        w[i] = s;
    }
}

void
loop7(std::vector<double> &x, const std::vector<double> &y,
      const std::vector<double> &z, const std::vector<double> &u,
      double q, double r, double t, int n)
{
    for (int k = 0; k < n; ++k) {
        x[k] = (u[k] + r * (z[k] + r * y[k])) +
            t * ((u[k + 3] + r * (u[k + 2] + r * u[k + 1])) +
                 t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
    }
}

void
loop8(std::vector<double> &u1, std::vector<double> &u2,
      std::vector<double> &u3, std::vector<double> &du1,
      std::vector<double> &du2, std::vector<double> &du3,
      const double a[9], double sig, int ny)
{
    const int row = 5;
    const int plane = (ny + 1) * row;
    const auto at = [&](int l, int ky, int kx) {
        return std::size_t(l * plane + ky * row + kx);
    };
    const int nl1 = 0, nl2 = 1;
    const double a11 = a[0], a12 = a[1], a13 = a[2];
    const double a21 = a[3], a22 = a[4], a23 = a[5];
    const double a31 = a[6], a32 = a[7], a33 = a[8];

    for (int kx = 1; kx < 3; ++kx) {
        for (int ky = 1; ky < ny; ++ky) {
            du1[ky] = u1[at(nl1, ky + 1, kx)] - u1[at(nl1, ky - 1, kx)];
            du2[ky] = u2[at(nl1, ky + 1, kx)] - u2[at(nl1, ky - 1, kx)];
            du3[ky] = u3[at(nl1, ky + 1, kx)] - u3[at(nl1, ky - 1, kx)];
            u1[at(nl2, ky, kx)] =
                (((u1[at(nl1, ky, kx)] + a11 * du1[ky]) + a12 * du2[ky]) +
                 a13 * du3[ky]) +
                sig * ((u1[at(nl1, ky, kx + 1)] -
                        2.0 * u1[at(nl1, ky, kx)]) +
                       u1[at(nl1, ky, kx - 1)]);
            u2[at(nl2, ky, kx)] =
                (((u2[at(nl1, ky, kx)] + a21 * du1[ky]) + a22 * du2[ky]) +
                 a23 * du3[ky]) +
                sig * ((u2[at(nl1, ky, kx + 1)] -
                        2.0 * u2[at(nl1, ky, kx)]) +
                       u2[at(nl1, ky, kx - 1)]);
            u3[at(nl2, ky, kx)] =
                (((u3[at(nl1, ky, kx)] + a31 * du1[ky]) + a32 * du2[ky]) +
                 a33 * du3[ky]) +
                sig * ((u3[at(nl1, ky, kx + 1)] -
                        2.0 * u3[at(nl1, ky, kx)]) +
                       u3[at(nl1, ky, kx - 1)]);
        }
    }
}

void
loop9(std::vector<double> &px, const double dm[7], double c0, int n)
{
    const int row = 13;
    for (int i = 0; i < n; ++i) {
        double *p = &px[std::size_t(i) * row];
        double acc = dm[6] * p[12];         // dm28 * px[12]
        acc += dm[5] * p[11];
        acc += dm[4] * p[10];
        acc += dm[3] * p[9];
        acc += dm[2] * p[8];
        acc += dm[1] * p[7];
        acc += dm[0] * p[6];
        acc += c0 * (p[4] + p[5]);
        acc += p[2];
        p[0] = acc;
    }
}

void
loop10(std::vector<double> &px, const std::vector<double> &cx, int n)
{
    const int row = 14;
    for (int i = 0; i < n; ++i) {
        double *p = &px[std::size_t(i) * row];
        const double *c = &cx[std::size_t(i) * row];
        double ar = c[4];
        double br = ar - p[4];
        p[4] = ar;
        double cr = br - p[5];
        p[5] = br;
        ar = cr - p[6];
        p[6] = cr;
        br = ar - p[7];
        p[7] = ar;
        cr = br - p[8];
        p[8] = br;
        ar = cr - p[9];
        p[9] = cr;
        br = ar - p[10];
        p[10] = ar;
        cr = br - p[11];
        p[11] = br;
        p[13] = cr - p[12];
        p[12] = cr;
    }
}

void
loop11(std::vector<double> &x, const std::vector<double> &y, int n)
{
    for (int k = 1; k < n; ++k)
        x[k] = x[k - 1] + y[k];
}

void
loop12(std::vector<double> &x, const std::vector<double> &y, int n)
{
    for (int k = 0; k < n; ++k)
        x[k] = y[k + 1] - y[k];
}

void
loop13(std::vector<double> &p, const std::vector<double> &b,
       const std::vector<double> &c, std::vector<double> &h,
       const std::vector<std::int64_t> &e,
       const std::vector<std::int64_t> &f,
       const std::vector<double> &yz, int n)
{
    const std::int64_t mask = 31;
    for (int ip = 0; ip < n; ++ip) {
        double *pp = &p[std::size_t(ip) * 4];
        std::int64_t i1 = std::int64_t(pp[0]) & mask;
        std::int64_t j1 = std::int64_t(pp[1]) & mask;
        pp[2] += b[std::size_t(j1 * 32 + i1)];
        pp[3] += c[std::size_t(j1 * 32 + i1)];
        pp[0] += pp[2];
        pp[1] += pp[3];
        std::int64_t i2 = std::int64_t(pp[0]) & mask;
        std::int64_t j2 = std::int64_t(pp[1]) & mask;
        pp[0] += yz[std::size_t(i2 + 32)];          // y half
        pp[1] += yz[std::size_t(j2 + 32 + 64)];     // z half
        i2 = (i2 + e[std::size_t(j2 * 32 + i2)]) & mask;
        j2 = (j2 + f[std::size_t(j2 * 32 + i2)]) & mask;
        h[std::size_t(j2 * 32 + i2)] += 1.0;
    }
}

void
loop14(const std::vector<double> &grd, const std::vector<double> &ex,
       const std::vector<double> &dex, std::vector<double> &vx,
       std::vector<double> &xx, std::vector<std::int64_t> &ir,
       std::vector<double> &rx, std::vector<double> &rh, double flx,
       int n)
{
    std::vector<std::int64_t> ix(std::size_t(n), 0);
    std::vector<double> xi(std::size_t(n), 0.0);
    std::vector<double> ex1(std::size_t(n), 0.0);
    std::vector<double> dex1(std::size_t(n), 0.0);

    for (int k = 0; k < n; ++k) {
        vx[k] = 0.0;
        xx[k] = 0.0;
        ix[k] = std::int64_t(grd[k]);
        xi[k] = double(ix[k]);
        ex1[k] = ex[std::size_t(ix[k] - 1)];
        dex1[k] = dex[std::size_t(ix[k] - 1)];
    }
    for (int k = 0; k < n; ++k) {
        vx[k] = vx[k] + (ex1[k] + (xx[k] - xi[k]) * dex1[k]);
        xx[k] = (xx[k] + vx[k]) + flx;
        std::int64_t i = std::int64_t(xx[k]);
        rx[k] = xx[k] - double(i);
        ir[k] = (i & 2047) + 1;
        xx[k] = rx[k] + double(ir[k]);
    }
    for (int k = 0; k < n; ++k) {
        rh[std::size_t(ir[k] - 1)] += 1.0 - rx[k];
        rh[std::size_t(ir[k])] += rx[k];
    }
}

} // namespace ref
} // namespace mfusim
