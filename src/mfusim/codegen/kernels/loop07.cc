/**
 * @file
 * Livermore Loop 7 — equation of state fragment (vectorizable).
 *
 *   DO 7 k = 1,n
 * 7   X(k) = U(k) + R*(Z(k) + R*Y(k)) +
 *            T*(U(k+3) + R*(U(k+2) + R*U(k+1)) +
 *               T*(U(k+6) + Q*(U(k+5) + Q*U(k+4))))
 *
 * A long, independent basic block with nine loads and twelve
 * floating-point operations per iteration — the most ILP-rich of the
 * vectorizable loops.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop07()
{
    constexpr int n = 256;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t uBase = 300;
    constexpr std::uint64_t zBase = 600;
    constexpr std::uint64_t yBase = 900;

    constexpr double q = 0.5;
    constexpr double r = 0.375;
    constexpr double t = 0.25;

    Kernel kernel;
    kernel.spec = kernelSpecs()[6];
    kernel.memWords = 1200;

    std::vector<double> x(n, 0.0), u(n + 6), z(n), y(n);
    for (int k = 0; k < n + 6; ++k)
        u[k] = kernelValue(7, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n; ++k) {
        z[k] = kernelValue(7, 1000 + std::uint64_t(k), 0.5, 1.5);
        y[k] = kernelValue(7, 2000 + std::uint64_t(k), 0.5, 1.5);
    }
    for (int k = 0; k < n + 6; ++k)
        kernel.initF.push_back({ uBase + std::uint64_t(k), u[k] });
    for (int k = 0; k < n; ++k) {
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });
    }

    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, xBase);
    as.aconst(A2, uBase);
    as.aconst(A3, zBase);
    as.aconst(A4, yBase);
    as.sconstf(S5, r);
    as.sconstf(S6, t);
    as.sconstf(S7, q);

    const auto loop = as.here();
    as.loadS(S1, A4, 0);        // y[k]
    as.loadS(S2, A3, 0);        // z[k]
    as.fmul(S1, S5, S1);        // r*y
    as.fadd(S1, S2, S1);        // z + r*y
    as.fmul(S1, S5, S1);        // r*(z + r*y)
    as.loadS(S2, A2, 0);        // u[k]
    as.fadd(S1, S2, S1);        // u[k] + r*(...)
    as.loadS(S2, A2, 1);        // u[k+1]
    as.fmul(S2, S5, S2);        // r*u1
    as.loadS(S3, A2, 2);        // u[k+2]
    as.fadd(S2, S3, S2);        // u2 + r*u1
    as.fmul(S2, S5, S2);        // r*(u2 + r*u1)
    as.loadS(S3, A2, 3);        // u[k+3]
    as.fadd(S2, S3, S2);        // u3 + r*(...)
    as.loadS(S3, A2, 4);        // u[k+4]
    as.fmul(S3, S7, S3);        // q*u4
    as.loadS(S4, A2, 5);        // u[k+5]
    as.fadd(S3, S4, S3);        // u5 + q*u4
    as.fmul(S3, S7, S3);        // q*(u5 + q*u4)
    as.loadS(S4, A2, 6);        // u[k+6]
    as.fadd(S3, S4, S3);        // u6 + q*(...)
    as.fmul(S3, S6, S3);        // t*(...)
    as.fadd(S2, S2, S3);        // u3 + r*(...) + t*(...)
    as.fmul(S2, S6, S2);        // t*(...)
    as.fadd(S1, S1, S2);        // x[k]
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A3, A3, 1);
    as.aaddi(A4, A4, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop7(x, y, z, u, q, r, t, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
