/**
 * @file
 * Livermore Loop 5 — tri-diagonal elimination, below diagonal
 * (scalar: a first-order linear recurrence).
 *
 *   DO 5 i = 2,n
 * 5   X(i) = Z(i)*(Y(i) - X(i-1))
 *
 * The carried value x[i-1] lives in S1 across iterations, so the
 * fsub/fmul pair forms a 13-cycle serial dependence chain per
 * iteration — the canonical "inherently scalar" loop of the paper.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop05()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    constexpr std::uint64_t zBase = 1000;

    Kernel kernel;
    kernel.spec = kernelSpecs()[4];
    kernel.memWords = 1500;

    std::vector<double> x(n), y(n), z(n);
    for (int i = 0; i < n; ++i) {
        x[i] = i == 0 ? kernelValue(5, 0, 0.5, 1.5) : 0.0;
        y[i] = kernelValue(5, 1000 + std::uint64_t(i), 1.5, 2.5);
        z[i] = kernelValue(5, 2000 + std::uint64_t(i), 0.5, 1.0);
    }
    kernel.initF.push_back({ xBase, x[0] });
    for (int i = 0; i < n; ++i) {
        kernel.initF.push_back({ yBase + std::uint64_t(i), y[i] });
        kernel.initF.push_back({ zBase + std::uint64_t(i), z[i] });
    }

    Assembler as;
    as.aconst(A0, n - 1);       // i = 1..n-1
    as.aconst(A1, xBase + 1);   // &x[i]
    as.aconst(A2, yBase + 1);   // &y[i]
    as.aconst(A3, zBase + 1);   // &z[i]
    as.aconst(A4, xBase);
    as.loadS(S1, A4, 0);        // x[0] carried in S1

    const auto loop = as.here();
    as.loadS(S2, A2, 0);        // y[i]
    as.loadS(S3, A3, 0);        // z[i]
    as.fsub(S2, S2, S1);        // y[i] - x[i-1]
    as.fmul(S1, S3, S2);        // x[i]
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A3, A3, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop5(x, y, z, n);
    for (int i = 0; i < n; ++i)
        kernel.expectF.push_back({ xBase + std::uint64_t(i), x[i] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
