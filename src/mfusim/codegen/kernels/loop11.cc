/**
 * @file
 * Livermore Loop 11 — first sum (scalar: a prefix-sum recurrence).
 *
 *   DO 11 k = 2,n
 * 11  X(k) = X(k-1) + Y(k)
 *
 * The running sum is carried in S1; each iteration is one load, one
 * floating add, and one store plus loop overhead.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop11()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;

    Kernel kernel;
    kernel.spec = kernelSpecs()[10];
    kernel.memWords = 1000;

    std::vector<double> x(n, 0.0), y(n);
    x[0] = kernelValue(11, 0, 0.5, 1.5);
    for (int k = 0; k < n; ++k)
        y[k] = kernelValue(11, 1000 + std::uint64_t(k), 0.5, 1.5);

    kernel.initF.push_back({ xBase, x[0] });
    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    as.aconst(A0, n - 1);
    as.aconst(A1, xBase + 1);   // &x[k]
    as.aconst(A2, yBase + 1);   // &y[k]
    as.aconst(A3, xBase);
    as.loadS(S1, A3, 0);        // x[0] carried

    const auto loop = as.here();
    as.loadS(S2, A2, 0);        // y[k]
    as.fadd(S1, S1, S2);        // x[k] = x[k-1] + y[k]
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop11(x, y, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
