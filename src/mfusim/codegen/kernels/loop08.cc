/**
 * @file
 * Livermore Loop 8 — ADI integration (vectorizable).
 *
 * The largest basic block of the suite: per ky iteration, three
 * difference vectors du1..du3 are formed and the three solution
 * arrays u1..u3 are updated with 9 coupling coefficients a11..a33
 * plus sig.  The 11 loop-invariant constants live in T registers
 * (fetched with 1-cycle T->S moves), exercising the CRAY-1 save
 * files; u1, u2, u3 are allocated contiguously so one walking
 * pointer with fixed displacements addresses all three.
 *
 * mfusim dimensions: ny = 32 (LFK: 101), kx = 1..2 as in LFK.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop08()
{
    constexpr int ny = 32;
    constexpr int row = 5;                  // kx dimension
    constexpr int plane = (ny + 1) * row;   // 165: one nl plane
    constexpr int uSize = 2 * plane;        // 330: one u array
    constexpr std::uint64_t uBase = 0;      // u1, u2, u3 contiguous
    constexpr std::uint64_t duBase = 1000;  // du1, du2, du3 spaced 40
    constexpr double sig = 0.25;

    Kernel kernel;
    kernel.spec = kernelSpecs()[7];
    kernel.memWords = 1200;

    const double a[9] = { 0.11, 0.12, 0.13, 0.21, 0.22, 0.23,
                          0.31, 0.32, 0.33 };

    std::vector<double> u1(uSize), u2(uSize), u3(uSize);
    std::vector<double> du1(ny + 1, 0.0), du2(ny + 1, 0.0);
    std::vector<double> du3(ny + 1, 0.0);
    for (int i = 0; i < uSize; ++i) {
        u1[i] = kernelValue(8, std::uint64_t(i), 0.5, 1.5);
        u2[i] = kernelValue(8, 1000 + std::uint64_t(i), 0.5, 1.5);
        u3[i] = kernelValue(8, 2000 + std::uint64_t(i), 0.5, 1.5);
    }
    for (int i = 0; i < uSize; ++i) {
        kernel.initF.push_back({ uBase + std::uint64_t(i), u1[i] });
        kernel.initF.push_back(
            { uBase + uSize + std::uint64_t(i), u2[i] });
        kernel.initF.push_back(
            { uBase + 2 * uSize + std::uint64_t(i), u3[i] });
    }

    Assembler as;
    // Preload the 11 invariant constants into T0..T10.
    for (int i = 0; i < 9; ++i) {
        as.sconstf(S1, a[i]);
        as.tmovs(regT(unsigned(i)), S1);
    }
    as.sconstf(S1, sig);
    as.tmovs(regT(9), S1);
    as.sconstf(S1, 2.0);
    as.tmovs(regT(10), S1);

    // A6 = kx (1 then 2), A5 = outer count.
    as.aconst(A6, 1);
    as.aconst(A5, 2);

    const auto kxLoop = as.here();
    as.aconst(A7, uBase + row);         // &u1[nl1][1][0]
    as.aadd(A1, A7, A6);                // + kx
    as.aconst(A2, duBase + 1);          // &du1[1]
    as.aconst(A0, ny - 1);              // ky = 1..ny-1

    const auto kyLoop = as.here();
    // du1..du3[ky] = um[nl1][ky+1][kx] - um[nl1][ky-1][kx]
    as.loadS(S1, A1, row);
    as.loadS(S2, A1, -row);
    as.fsub(S1, S1, S2);                // du1
    as.storeS(A2, 0, S1);
    as.loadS(S2, A1, uSize + row);
    as.loadS(S3, A1, uSize - row);
    as.fsub(S2, S2, S3);                // du2
    as.storeS(A2, 40, S2);
    as.loadS(S3, A1, 2 * uSize + row);
    as.loadS(S4, A1, 2 * uSize - row);
    as.fsub(S3, S3, S4);                // du3
    as.storeS(A2, 80, S3);

    // One update: um[nl2][ky][kx] given base displacement and the
    // T-register ids of its three coupling coefficients.
    const auto update = [&](int base, unsigned ta, unsigned tb,
                            unsigned tc) {
        as.loadS(S4, A1, base);         // center
        as.smovt(S5, regT(ta));
        as.fmul(S5, S5, S1);
        as.fadd(S4, S4, S5);
        as.smovt(S5, regT(tb));
        as.fmul(S5, S5, S2);
        as.fadd(S4, S4, S5);
        as.smovt(S5, regT(tc));
        as.fmul(S5, S5, S3);
        as.fadd(S4, S4, S5);
        as.loadS(S5, A1, base + 1);     // kx+1
        as.loadS(S6, A1, base);         // center
        as.smovt(S7, regT(10));         // 2.0
        as.fmul(S6, S7, S6);
        as.fsub(S5, S5, S6);
        as.loadS(S6, A1, base - 1);     // kx-1
        as.fadd(S5, S5, S6);
        as.smovt(S6, regT(9));          // sig
        as.fmul(S5, S6, S5);
        as.fadd(S4, S4, S5);
        as.storeS(A1, base + plane, S4);
    };
    update(0, 0, 1, 2);                 // u1 with a11, a12, a13
    update(uSize, 3, 4, 5);             // u2 with a21, a22, a23
    update(2 * uSize, 6, 7, 8);         // u3 with a31, a32, a33

    as.aaddi(A1, A1, row);
    as.aaddi(A2, A2, 1);
    as.aaddi(A0, A0, -1);
    as.branz(kyLoop);

    as.aaddi(A6, A6, 1);
    as.aaddi(A5, A5, -1);
    as.aaddi(A0, A5, 0);
    as.branz(kxLoop);
    as.halt();
    kernel.program = as.finish();

    ref::loop8(u1, u2, u3, du1, du2, du3, a, sig, ny);
    for (int i = 0; i < uSize; ++i) {
        kernel.expectF.push_back({ uBase + std::uint64_t(i), u1[i] });
        kernel.expectF.push_back(
            { uBase + uSize + std::uint64_t(i), u2[i] });
        kernel.expectF.push_back(
            { uBase + 2 * uSize + std::uint64_t(i), u3[i] });
    }
    for (int i = 0; i <= ny; ++i) {
        kernel.expectF.push_back(
            { duBase + std::uint64_t(i), du1[i] });
        kernel.expectF.push_back(
            { duBase + 40 + std::uint64_t(i), du2[i] });
        kernel.expectF.push_back(
            { duBase + 80 + std::uint64_t(i), du3[i] });
    }

    return kernel;
}

} // namespace kernels
} // namespace mfusim
