/**
 * @file
 * Livermore Loop 4 — banded linear equations (vectorizable).
 *
 *   m = (1001-7)/2
 *   DO 4 k = 7,1001,m
 *     lw = k - 6
 *     temp = X(k-1)
 *     DO 4 j = 5,n,5
 *       temp = temp - X(lw)*Y(j)
 * 4     lw = lw + 1
 *     X(k-1) = Y(5)*temp
 *
 * Three outer passes, each a 200-iteration dot-product-like inner
 * loop with stride 5 on Y and stride 1 on X.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop04()
{
    constexpr int n = 1001;
    constexpr int m = (1001 - 7) / 2;       // 497
    constexpr int innerCount = (n - 4 + 4) / 5;     // j = 4,9,...,999
    constexpr std::uint64_t xBase = 0;
    constexpr int xLen = 1300;              // inner loop reads x[lw] up to
                                            // lw = 994+199 = 1193
    constexpr std::uint64_t yBase = 1400;

    Kernel kernel;
    kernel.spec = kernelSpecs()[3];
    kernel.memWords = 2500;

    std::vector<double> x(xLen), y(n + 1);
    for (int k = 0; k < xLen; ++k)
        x[k] = kernelValue(4, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 1; ++k)
        y[k] = kernelValue(4, 10000 + std::uint64_t(k), 0.0, 0.01);
    for (int k = 0; k < xLen; ++k)
        kernel.initF.push_back({ xBase + std::uint64_t(k), x[k] });
    for (int k = 0; k < n + 1; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    // A4 = k (0-based: 6, 503, 1000), A5 = outer count
    as.aconst(A4, 6);
    as.aconst(A5, 3);
    as.aconst(A3, yBase + 4);
    as.loadS(S5, A3, 0);            // y[4], loop invariant

    const auto outer = as.here();
    as.aconst(A6, std::int64_t(xBase) - 6);
    as.aadd(A1, A6, A4);            // A1 = &x[lw], lw = k-6
    as.aconst(A6, std::int64_t(xBase) - 1);
    as.aadd(A7, A6, A4);            // A7 = &x[k-1]
    as.loadS(S1, A7, 0);            // temp = x[k-1]
    as.aconst(A2, yBase + 4);       // A2 = &y[j], j = 4
    as.aconst(A0, innerCount);

    const auto inner = as.here();
    as.loadS(S2, A1, 0);            // x[lw]
    as.loadS(S3, A2, 0);            // y[j]
    as.fmul(S2, S2, S3);
    as.fsub(S1, S1, S2);            // temp -= x[lw]*y[j]
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 5);
    as.aaddi(A0, A0, -1);
    as.branz(inner);

    as.fmul(S1, S5, S1);            // y[4]*temp
    as.storeS(A7, 0, S1);
    as.aaddi(A4, A4, m);
    as.aaddi(A5, A5, -1);
    as.aaddi(A0, A5, 0);
    as.branz(outer);
    as.halt();
    kernel.program = as.finish();

    ref::loop4(x, y, n, m);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
