/**
 * @file
 * Livermore Loop 10 — difference predictors (vectorizable).
 *
 * Per particle, a chain of nine first differences is pushed through
 * columns 4..13 of the predictor table:
 *
 *   ar = CX(5,i); br = ar - PX(5,i); PX(5,i) = ar
 *   cr = br - PX(6,i); PX(6,i) = br; ...
 *   PX(14,i) = cr - PX(13,i); PX(13,i) = cr
 *
 * Rows are 14 words; no constants, all work in three rotating S
 * registers, half the references are stores.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop10()
{
    constexpr int n = 128;
    constexpr int row = 14;
    constexpr std::uint64_t pxBase = 0;
    constexpr std::uint64_t cxBase = 2000;

    Kernel kernel;
    kernel.spec = kernelSpecs()[9];
    kernel.memWords = 2000 + std::size_t(n) * row + 50;

    std::vector<double> px(std::size_t(n) * row);
    std::vector<double> cx(std::size_t(n) * row);
    for (std::size_t i = 0; i < px.size(); ++i) {
        px[i] = kernelValue(10, i, 0.5, 1.5);
        cx[i] = kernelValue(10, 10000 + i, 0.5, 1.5);
    }
    for (std::size_t i = 0; i < px.size(); ++i) {
        kernel.initF.push_back({ pxBase + i, px[i] });
        kernel.initF.push_back({ cxBase + i, cx[i] });
    }

    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, pxBase);
    as.aconst(A2, cxBase);

    const auto loop = as.here();
    as.loadS(S1, A2, 4);            // ar = cx[4]
    as.loadS(S2, A1, 4);
    as.fsub(S3, S1, S2);            // br = ar - px[4]
    as.storeS(A1, 4, S1);           // px[4] = ar
    as.loadS(S2, A1, 5);
    as.fsub(S1, S3, S2);            // cr = br - px[5]
    as.storeS(A1, 5, S3);           // px[5] = br
    as.loadS(S2, A1, 6);
    as.fsub(S3, S1, S2);            // ar = cr - px[6]
    as.storeS(A1, 6, S1);           // px[6] = cr
    as.loadS(S2, A1, 7);
    as.fsub(S1, S3, S2);            // br = ar - px[7]
    as.storeS(A1, 7, S3);           // px[7] = ar
    as.loadS(S2, A1, 8);
    as.fsub(S3, S1, S2);            // cr = br - px[8]
    as.storeS(A1, 8, S1);           // px[8] = br
    as.loadS(S2, A1, 9);
    as.fsub(S1, S3, S2);            // ar = cr - px[9]
    as.storeS(A1, 9, S3);           // px[9] = cr
    as.loadS(S2, A1, 10);
    as.fsub(S3, S1, S2);            // br = ar - px[10]
    as.storeS(A1, 10, S1);          // px[10] = ar
    as.loadS(S2, A1, 11);
    as.fsub(S1, S3, S2);            // cr = br - px[11]
    as.storeS(A1, 11, S3);          // px[11] = br
    as.loadS(S2, A1, 12);
    as.fsub(S3, S1, S2);            // px[13] value = cr - px[12]
    as.storeS(A1, 13, S3);
    as.storeS(A1, 12, S1);          // px[12] = cr
    as.aaddi(A1, A1, row);
    as.aaddi(A2, A2, row);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop10(px, cx, n);
    for (std::size_t i = 0; i < px.size(); ++i)
        kernel.expectF.push_back({ pxBase + i, px[i] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
