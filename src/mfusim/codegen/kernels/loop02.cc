/**
 * @file
 * Livermore Loop 2 — excerpt from an incomplete Cholesky conjugate
 * gradient code (vectorizable).
 *
 *   ii = n; ipntp = 0
 *   DO WHILE (ii > 1)
 *     ipnt = ipntp; ipntp = ipntp + ii; ii = ii/2; i = ipntp
 *     DO 2 k = ipnt+2, ipntp, 2
 *       X(i) = X(k) - V(k)*X(k-1) - V(k+1)*X(k+1)
 *       i = i + 1
 *   2 CONTINUE
 *
 * The cyclic-reduction control structure gives a doubly nested loop
 * whose inner trip count halves each outer pass.  The ii/2 step is
 * compiled through the S-register shifter because the base ISA (like
 * the CRAY-1) has no address-register shift.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop02()
{
    constexpr int n = 256;                  // power of two
    constexpr std::uint64_t xBase = 0;      // x spans ~2n entries
    constexpr std::uint64_t vBase = 600;

    Kernel kernel;
    kernel.spec = kernelSpecs()[1];
    kernel.memWords = 1200;

    const int total = 2 * n;                // touched index range
    std::vector<double> x(total + 2), v(total + 2);
    for (int k = 0; k < total + 2; ++k) {
        x[k] = kernelValue(2, std::uint64_t(k), 0.5, 1.5);
        v[k] = kernelValue(2, 10000 + std::uint64_t(k), 0.0, 0.5);
    }
    for (int k = 0; k < total + 2; ++k) {
        kernel.initF.push_back({ xBase + std::uint64_t(k), x[k] });
        kernel.initF.push_back({ vBase + std::uint64_t(k), v[k] });
    }

    Assembler as;
    // A4 = ii, A5 = ipntp, A6 = ipnt
    as.aconst(A4, n);
    as.aconst(A5, 0);

    const auto outer = as.here();
    as.aaddi(A6, A5, 0);            // ipnt = ipntp
    as.aadd(A5, A5, A4);            // ipntp += ii
    as.smova(S1, A4);               // ii /= 2 via scalar shifter
    as.sshr(S1, S1, 1);
    as.amovs(A4, S1);
    as.aconst(A7, xBase + 1);
    as.aadd(A1, A7, A6);            // A1 = &x[ipnt+1]
    as.aconst(A7, vBase + 1);
    as.aadd(A2, A7, A6);            // A2 = &v[ipnt+1]
    as.aconst(A7, xBase);
    as.aadd(A3, A7, A5);            // A3 = &x[i], i = ipntp
    as.aaddi(A0, A4, 0);            // inner count = new ii

    const auto inner = as.here();
    as.loadS(S1, A1, 0);            // x[k]
    as.loadS(S2, A1, -1);           // x[k-1]
    as.loadS(S3, A2, 0);            // v[k]
    as.fmul(S2, S3, S2);            // v[k]*x[k-1]
    as.fsub(S1, S1, S2);
    as.loadS(S2, A1, 1);            // x[k+1]
    as.loadS(S3, A2, 1);            // v[k+1]
    as.fmul(S2, S3, S2);
    as.fsub(S1, S1, S2);
    as.storeS(A3, 0, S1);           // x[i]
    as.aaddi(A1, A1, 2);
    as.aaddi(A2, A2, 2);
    as.aaddi(A3, A3, 1);
    as.aaddi(A0, A0, -1);
    as.branz(inner);

    as.aaddi(A0, A4, -1);           // while (ii > 1)
    as.branz(outer);
    as.halt();
    kernel.program = as.finish();

    ref::loop2(x, v, n);
    for (int k = 0; k < total + 2; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
