/**
 * @file
 * Software-unrolled variants of Livermore loops 1, 5, 11 and 12.
 *
 * Each builder takes an unroll factor and emits `factor` copies of
 * the loop body per loop-closing branch, with array accesses folded
 * into load/store displacements and the induction pointers advanced
 * once per (unrolled) iteration.  Element-wise computation and
 * floating-point association order are identical to the canonical
 * kernels, so the same C++ references validate the results.
 *
 * Registers are reused across the unrolled bodies exactly as a
 * simple compiler would reuse them: the streaming loops (1, 12)
 * recycle the same scratch registers -- so the unrolled code is
 * still WAW-serialized on machines without renaming, making these
 * kernels a sharp probe of the RUU's register instances -- and the
 * recurrences (5, 11) keep their loop-carried value in one register.
 */

#include <cassert>
#include <stdexcept>

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{

namespace
{

void
checkFactor(int n, int factor)
{
    assert((factor == 1 || factor == 2 || factor == 4 ||
            factor == 8) &&
           "unroll factor must be 1, 2, 4 or 8");
    assert(n % factor == 0 && "trip count must divide evenly");
    (void)n;
    (void)factor;
}

Kernel
buildLoop01Unrolled(int factor)
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    constexpr std::uint64_t zBase = 1000;
    constexpr double q = 0.5;
    constexpr double r = 0.25;
    constexpr double t = 0.35;
    checkFactor(n, factor);

    Kernel kernel;
    kernel.spec = kernelSpecs()[0];
    kernel.memWords = 1500;

    std::vector<double> x(n, 0.0), y(n), z(n + 11);
    for (int k = 0; k < n; ++k)
        y[k] = kernelValue(1, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 11; ++k)
        z[k] = kernelValue(1, 1000 + std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });
    for (int k = 0; k < n + 11; ++k)
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });

    Assembler as;
    as.aconst(A0, n / factor);
    as.aconst(A1, xBase);
    as.aconst(A2, yBase);
    as.aconst(A3, zBase);
    as.sconstf(S5, q);
    as.sconstf(S6, r);
    as.sconstf(S7, t);

    const auto loop = as.here();
    for (int u = 0; u < factor; ++u) {
        as.loadS(S1, A2, u);
        as.loadS(S2, A3, 10 + u);
        as.loadS(S3, A3, 11 + u);
        as.fmul(S2, S6, S2);
        as.fmul(S3, S7, S3);
        as.fadd(S2, S2, S3);
        as.fmul(S1, S1, S2);
        as.fadd(S1, S5, S1);
        as.storeS(A1, u, S1);
    }
    as.aaddi(A1, A1, factor);
    as.aaddi(A2, A2, factor);
    as.aaddi(A3, A3, factor);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop1(x, y, z, q, r, t, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

Kernel
buildLoop05Unrolled(int factor)
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    constexpr std::uint64_t zBase = 1000;
    // i runs 1..n-1: 399 iterations; unroll the first 396 (divisible
    // by 4) -- to keep the code simple we instead unroll (n-1-rem)
    // and peel the remainder sequentially before the loop.
    const int total = n - 1;
    const int rem = total % factor;

    Kernel kernel;
    kernel.spec = kernelSpecs()[4];
    kernel.memWords = 1500;

    std::vector<double> x(n), y(n), z(n);
    for (int i = 0; i < n; ++i) {
        x[i] = i == 0 ? kernelValue(5, 0, 0.5, 1.5) : 0.0;
        y[i] = kernelValue(5, 1000 + std::uint64_t(i), 1.5, 2.5);
        z[i] = kernelValue(5, 2000 + std::uint64_t(i), 0.5, 1.0);
    }
    kernel.initF.push_back({ xBase, x[0] });
    for (int i = 0; i < n; ++i) {
        kernel.initF.push_back({ yBase + std::uint64_t(i), y[i] });
        kernel.initF.push_back({ zBase + std::uint64_t(i), z[i] });
    }

    Assembler as;
    as.aconst(A1, xBase + 1);
    as.aconst(A2, yBase + 1);
    as.aconst(A3, zBase + 1);
    as.aconst(A4, xBase);
    as.loadS(S1, A4, 0);        // x[0] carried in S1

    // Peeled remainder iterations (straight-line).
    for (int p = 0; p < rem; ++p) {
        as.loadS(S2, A2, p);
        as.loadS(S3, A3, p);
        as.fsub(S2, S2, S1);
        as.fmul(S1, S3, S2);
        as.storeS(A1, p, S1);
    }
    if (rem > 0) {
        as.aaddi(A1, A1, rem);
        as.aaddi(A2, A2, rem);
        as.aaddi(A3, A3, rem);
    }

    as.aconst(A0, (total - rem) / factor);
    const auto loop = as.here();
    for (int u = 0; u < factor; ++u) {
        as.loadS(S2, A2, u);
        as.loadS(S3, A3, u);
        as.fsub(S2, S2, S1);
        as.fmul(S1, S3, S2);
        as.storeS(A1, u, S1);
    }
    as.aaddi(A1, A1, factor);
    as.aaddi(A2, A2, factor);
    as.aaddi(A3, A3, factor);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop5(x, y, z, n);
    for (int i = 0; i < n; ++i)
        kernel.expectF.push_back({ xBase + std::uint64_t(i), x[i] });
    return kernel;
}

Kernel
buildLoop11Unrolled(int factor)
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    const int total = n - 1;
    const int rem = total % factor;

    Kernel kernel;
    kernel.spec = kernelSpecs()[10];
    kernel.memWords = 1000;

    std::vector<double> x(n, 0.0), y(n);
    x[0] = kernelValue(11, 0, 0.5, 1.5);
    for (int k = 0; k < n; ++k)
        y[k] = kernelValue(11, 1000 + std::uint64_t(k), 0.5, 1.5);
    kernel.initF.push_back({ xBase, x[0] });
    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    as.aconst(A1, xBase + 1);
    as.aconst(A2, yBase + 1);
    as.aconst(A3, xBase);
    as.loadS(S1, A3, 0);        // running sum

    for (int p = 0; p < rem; ++p) {
        as.loadS(S2, A2, p);
        as.fadd(S1, S1, S2);
        as.storeS(A1, p, S1);
    }
    if (rem > 0) {
        as.aaddi(A1, A1, rem);
        as.aaddi(A2, A2, rem);
    }

    as.aconst(A0, (total - rem) / factor);
    const auto loop = as.here();
    for (int u = 0; u < factor; ++u) {
        as.loadS(S2, A2, u);
        as.fadd(S1, S1, S2);
        as.storeS(A1, u, S1);
    }
    as.aaddi(A1, A1, factor);
    as.aaddi(A2, A2, factor);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop11(x, y, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

Kernel
buildLoop12Unrolled(int factor)
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    checkFactor(n, factor);

    Kernel kernel;
    kernel.spec = kernelSpecs()[11];
    kernel.memWords = 1000;

    std::vector<double> x(n, 0.0), y(n + 1);
    for (int k = 0; k < n + 1; ++k)
        y[k] = kernelValue(12, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 1; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    as.aconst(A0, n / factor);
    as.aconst(A1, xBase);
    as.aconst(A2, yBase);

    const auto loop = as.here();
    for (int u = 0; u < factor; ++u) {
        as.loadS(S1, A2, u + 1);
        as.loadS(S2, A2, u);
        as.fsub(S1, S1, S2);
        as.storeS(A1, u, S1);
    }
    as.aaddi(A1, A1, factor);
    as.aaddi(A2, A2, factor);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop12(x, y, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

} // namespace

const std::vector<int> &
unrollableLoopIds()
{
    static const std::vector<int> ids = { 1, 5, 11, 12 };
    return ids;
}

Kernel
buildUnrolledKernel(int id, int factor)
{
    if (factor < 1 || factor > 8 || (factor & (factor - 1)) != 0) {
        throw std::invalid_argument(
            "buildUnrolledKernel: factor must be 1, 2, 4 or 8");
    }
    switch (id) {
      case 1:
        return buildLoop01Unrolled(factor);
      case 5:
        return buildLoop05Unrolled(factor);
      case 11:
        return buildLoop11Unrolled(factor);
      case 12:
        return buildLoop12Unrolled(factor);
      default:
        throw std::invalid_argument(
            "buildUnrolledKernel: loop " + std::to_string(id) +
            " has no unrolled variant (use 1, 5, 11 or 12)");
    }
}

} // namespace mfusim
