/**
 * @file
 * Internal interface between livermore.cc and the per-loop builders.
 *
 * Not installed as public API; include livermore.hh instead.
 */

#ifndef MFUSIM_CODEGEN_KERNELS_KERNELS_HH
#define MFUSIM_CODEGEN_KERNELS_KERNELS_HH

#include "mfusim/codegen/livermore.hh"

namespace mfusim
{
namespace kernels
{

Kernel buildLoop01();
Kernel buildLoop02();
Kernel buildLoop03();
Kernel buildLoop04();
Kernel buildLoop05();
Kernel buildLoop06();
Kernel buildLoop07();
Kernel buildLoop08();
Kernel buildLoop09();
Kernel buildLoop10();
Kernel buildLoop11();
Kernel buildLoop12();
Kernel buildLoop13();
Kernel buildLoop14();

} // namespace kernels
} // namespace mfusim

#endif // MFUSIM_CODEGEN_KERNELS_KERNELS_HH
