/**
 * @file
 * Livermore Loop 9 — integrate predictors (vectorizable).
 *
 *   DO 9 i = 1,n
 * 9   PX(1,i) = DM28*PX(13,i) + DM27*PX(12,i) + DM26*PX(11,i) +
 *               DM25*PX(10,i) + DM24*PX( 9,i) + DM23*PX( 8,i) +
 *               DM22*PX( 7,i) + C0*(PX(5,i) + PX(6,i)) + PX(3,i)
 *
 * Each particle row is 13 words; the 8 integration coefficients are
 * held in T registers.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop09()
{
    constexpr int n = 128;
    constexpr int row = 13;
    constexpr std::uint64_t pxBase = 0;

    Kernel kernel;
    kernel.spec = kernelSpecs()[8];
    kernel.memWords = std::size_t(n) * row + 50;

    const double dm[7] = { 0.22, 0.23, 0.24, 0.25, 0.26, 0.27, 0.28 };
    constexpr double c0 = 0.5;

    std::vector<double> px(std::size_t(n) * row);
    for (std::size_t i = 0; i < px.size(); ++i)
        px[i] = kernelValue(9, i, 0.5, 1.5);
    for (std::size_t i = 0; i < px.size(); ++i)
        kernel.initF.push_back({ pxBase + i, px[i] });

    Assembler as;
    // dm22..dm28 -> T0..T6, c0 -> T7
    for (int i = 0; i < 7; ++i) {
        as.sconstf(S1, dm[i]);
        as.tmovs(regT(unsigned(i)), S1);
    }
    as.sconstf(S1, c0);
    as.tmovs(regT(7), S1);

    as.aconst(A0, n);
    as.aconst(A1, pxBase);

    const auto loop = as.here();
    as.loadS(S1, A1, 12);           // px[12]
    as.smovt(S2, regT(6));          // dm28
    as.fmul(S1, S2, S1);            // acc
    for (int col = 11; col >= 6; --col) {
        as.loadS(S2, A1, col);
        as.smovt(S3, regT(unsigned(col - 6)));
        as.fmul(S2, S3, S2);
        as.fadd(S1, S1, S2);
    }
    as.loadS(S2, A1, 4);
    as.loadS(S3, A1, 5);
    as.fadd(S2, S2, S3);            // px[4] + px[5]
    as.smovt(S3, regT(7));          // c0
    as.fmul(S2, S3, S2);
    as.fadd(S1, S1, S2);
    as.loadS(S2, A1, 2);
    as.fadd(S1, S1, S2);
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, row);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop9(px, dm, c0, n);
    for (int i = 0; i < n; ++i) {
        kernel.expectF.push_back(
            { pxBase + std::uint64_t(i) * row, px[std::size_t(i) * row] });
    }

    return kernel;
}

} // namespace kernels
} // namespace mfusim
