/**
 * @file
 * Livermore Loop 6 — general linear recurrence equations (scalar).
 *
 *   DO 6 i = 2,n
 *     W(i) = 0.0100
 *     DO 6 k = 1,i-1
 * 6     W(i) = W(i) + B(k,i)*W(i-k)
 *
 * A triangular doubly nested loop: the inner accumulation walks B
 * down a column (stride n) and W backwards (stride -1), and every
 * W(i) depends on all earlier W values.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop06()
{
    constexpr int n = 64;
    constexpr std::uint64_t wBase = 0;
    constexpr std::uint64_t bBase = 100;    // flattened [n][n]

    Kernel kernel;
    kernel.spec = kernelSpecs()[5];
    kernel.memWords = 100 + n * n + 50;

    std::vector<double> w(n, 0.0), b(std::size_t(n) * n);
    w[0] = kernelValue(6, 0, 0.5, 1.5);
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = kernelValue(6, 1000 + i, 0.0, 0.02);

    kernel.initF.push_back({ wBase, w[0] });
    for (std::size_t i = 0; i < b.size(); ++i)
        kernel.initF.push_back({ bBase + i, b[i] });

    Assembler as;
    // A4 = i, A3 = &w[i]
    as.aconst(A4, 1);
    as.aconst(A3, wBase + 1);
    as.sconstf(S5, 0.01);

    const auto outer = as.here();
    as.smovs(S1, S5);               // accumulator = 0.01
    as.aconst(A6, bBase);
    as.aadd(A1, A6, A4);            // A1 = &b[0][i] = bBase + i
    as.aconst(A6, std::int64_t(wBase) - 1);
    as.aadd(A2, A6, A4);            // A2 = &w[i-1]
    as.aaddi(A0, A4, 0);            // inner count = i

    const auto inner = as.here();
    as.loadS(S2, A1, 0);            // b[k][i]
    as.loadS(S3, A2, 0);            // w[i-k-1]
    as.fmul(S2, S2, S3);
    as.fadd(S1, S1, S2);
    as.aaddi(A1, A1, n);            // next row of B
    as.aaddi(A2, A2, -1);           // w walks backwards
    as.aaddi(A0, A0, -1);
    as.branz(inner);

    as.storeS(A3, 0, S1);           // w[i]
    as.aaddi(A3, A3, 1);
    as.aaddi(A4, A4, 1);
    as.aconst(A6, n);
    as.asub(A0, A6, A4);            // while (i < n)
    as.branz(outer);
    as.halt();
    kernel.program = as.finish();

    ref::loop6(w, b, n);
    for (int i = 0; i < n; ++i)
        kernel.expectF.push_back({ wBase + std::uint64_t(i), w[i] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
