/**
 * @file
 * Livermore Loop 13 — 2-D particle in cell (scalar).
 *
 * Per particle: locate its grid cell from its float coordinates,
 * gather field values (b, c), advance velocity and position, gather
 * again with the moved position (y, z tables and the e, f index
 * grids), and scatter a count into the h grid.  Heavy on
 * float->int conversion, masking, and computed addressing — the
 * paper's canonical hard-to-vectorize loop.
 *
 * mfusim adaptation (documented in DESIGN.md): 32x32 grids instead
 * of 64x64, e/f stored as integer grids, and an explicit &31 wrap
 * after the e/f index increments so synthetic field data can never
 * index out of bounds.  The C++ reference implements the identical
 * adapted recurrence.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop13()
{
    constexpr int n = 128;
    constexpr int gridWords = 32 * 32;
    constexpr std::uint64_t pBase = 0;          // [n][4]
    constexpr std::uint64_t gBase = 1000;       // b,c,e,f,h contiguous
    constexpr std::int64_t cOff = 1024;
    constexpr std::int64_t eOff = 2048;
    constexpr std::int64_t fOff = 3072;
    constexpr std::int64_t hOff = 4096;
    constexpr std::uint64_t yzBase = 6200;      // y[64] then z[64]

    Kernel kernel;
    kernel.spec = kernelSpecs()[12];
    kernel.memWords = 6500;

    std::vector<double> p(std::size_t(n) * 4);
    std::vector<double> b(gridWords), c(gridWords), h(gridWords, 0.0);
    std::vector<std::int64_t> e(gridWords), f(gridWords);
    std::vector<double> yz(128);
    for (int ip = 0; ip < n; ++ip) {
        p[std::size_t(ip) * 4 + 0] =
            kernelValue(13, std::uint64_t(ip), 1.0, 30.0);
        p[std::size_t(ip) * 4 + 1] =
            kernelValue(13, 500 + std::uint64_t(ip), 1.0, 30.0);
        p[std::size_t(ip) * 4 + 2] =
            kernelValue(13, 1000 + std::uint64_t(ip), 0.0, 1.0);
        p[std::size_t(ip) * 4 + 3] =
            kernelValue(13, 1500 + std::uint64_t(ip), 0.0, 1.0);
    }
    for (int i = 0; i < gridWords; ++i) {
        b[i] = kernelValue(13, 2000 + std::uint64_t(i), 0.0, 0.5);
        c[i] = kernelValue(13, 4000 + std::uint64_t(i), 0.0, 0.5);
        e[i] = std::int64_t(kernelValue(13, 6000 + std::uint64_t(i),
                                        0.0, 4.0));
        f[i] = std::int64_t(kernelValue(13, 8000 + std::uint64_t(i),
                                        0.0, 4.0));
    }
    for (int i = 0; i < 128; ++i)
        yz[i] = kernelValue(13, 10000 + std::uint64_t(i), 0.0, 0.9);

    for (std::size_t i = 0; i < p.size(); ++i)
        kernel.initF.push_back({ pBase + i, p[i] });
    for (int i = 0; i < gridWords; ++i) {
        kernel.initF.push_back({ gBase + std::uint64_t(i), b[i] });
        kernel.initF.push_back(
            { gBase + std::uint64_t(cOff + i), c[i] });
        kernel.initI.push_back(
            { gBase + std::uint64_t(eOff + i), e[i] });
        kernel.initI.push_back(
            { gBase + std::uint64_t(fOff + i), f[i] });
    }
    for (int i = 0; i < 128; ++i)
        kernel.initF.push_back({ yzBase + std::uint64_t(i), yz[i] });

    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, pBase);           // &p[ip][0], stride 4
    as.aconst(A3, gBase);           // grid block base
    as.aconst(A5, yzBase + 32);     // y offset base
    as.sconsti(S7, 31);             // wrap mask
    as.sconstf(S1, 1.0);
    as.tmovs(regT(0), S1);

    const auto loop = as.here();
    as.loadS(S1, A1, 0);            // px
    as.sfix(S1, S1);
    as.sand_(S1, S1, S7);           // i1
    as.loadS(S2, A1, 1);            // py
    as.sfix(S2, S2);
    as.sand_(S2, S2, S7);           // j1
    as.sshl(S3, S2, 5);             // j1*32
    as.sadd(S3, S3, S1);            // cell index
    as.amovs(A4, S3);
    as.aadd(A4, A3, A4);            // &b[j1][i1]
    as.loadS(S4, A4, 0);            // b
    as.loadS(S5, A1, 2);            // vx
    as.fadd(S5, S5, S4);
    as.storeS(A1, 2, S5);           // p[ip][2] (S5 = vx')
    as.loadS(S4, A4, cOff);         // c
    as.loadS(S3, A1, 3);            // vy
    as.fadd(S3, S3, S4);
    as.storeS(A1, 3, S3);           // p[ip][3] (S3 = vy')
    as.loadS(S1, A1, 0);
    as.fadd(S1, S1, S5);            // px += vx'
    as.loadS(S2, A1, 1);
    as.fadd(S2, S2, S3);            // py += vy'
    as.sfix(S4, S1);
    as.sand_(S4, S4, S7);           // i2
    as.sfix(S3, S2);
    as.sand_(S3, S3, S7);           // j2
    as.amovs(A4, S4);
    as.aadd(A6, A5, A4);
    as.loadS(S5, A6, 0);            // y[i2+32]
    as.fadd(S1, S1, S5);
    as.storeS(A1, 0, S1);           // p[ip][0]
    as.amovs(A4, S3);
    as.aadd(A6, A5, A4);
    as.loadS(S5, A6, 64);           // z[j2+32]
    as.fadd(S2, S2, S5);
    as.storeS(A1, 1, S2);           // p[ip][1]
    as.sshl(S5, S3, 5);             // j2*32
    as.sadd(S6, S5, S4);
    as.amovs(A4, S6);
    as.aadd(A6, A3, A4);
    as.loadS(S6, A6, eOff);         // e[j2][i2]
    as.sadd(S4, S4, S6);
    as.sand_(S4, S4, S7);           // i2 wrapped
    as.sadd(S6, S5, S4);            // j2*32 + new i2
    as.amovs(A4, S6);
    as.aadd(A6, A3, A4);
    as.loadS(S6, A6, fOff);         // f[j2][i2]
    as.sadd(S3, S3, S6);
    as.sand_(S3, S3, S7);           // j2 wrapped
    as.sshl(S5, S3, 5);
    as.sadd(S6, S5, S4);
    as.amovs(A4, S6);
    as.aadd(A6, A3, A4);
    as.loadS(S5, A6, hOff);         // h[j2][i2]
    as.smovt(S6, regT(0));
    as.fadd(S5, S5, S6);
    as.storeS(A6, hOff, S5);
    as.aaddi(A1, A1, 4);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop13(p, b, c, h, e, f, yz, n);
    for (std::size_t i = 0; i < p.size(); ++i)
        kernel.expectF.push_back({ pBase + i, p[i] });
    for (int i = 0; i < gridWords; ++i) {
        kernel.expectF.push_back(
            { gBase + std::uint64_t(hOff + i), h[i] });
    }

    return kernel;
}

} // namespace kernels
} // namespace mfusim
