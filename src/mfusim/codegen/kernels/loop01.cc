/**
 * @file
 * Livermore Loop 1 — hydro fragment (vectorizable).
 *
 *   DO 1 k = 1,n
 * 1   X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11))
 *
 * Compiled with three induction-variable pointers (x, y, z), the
 * k+10/k+11 accesses folded into load displacements, and the scalar
 * constants Q, R, T held in S registers across the loop.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop01()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    constexpr std::uint64_t zBase = 1000;

    constexpr double q = 0.5;
    constexpr double r = 0.25;
    constexpr double t = 0.35;

    Kernel kernel;
    kernel.spec = kernelSpecs()[0];
    kernel.memWords = 1500;

    // Synthetic inputs.
    std::vector<double> x(n, 0.0);
    std::vector<double> y(n), z(n + 11);
    for (int k = 0; k < n; ++k)
        y[k] = kernelValue(1, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 11; ++k)
        z[k] = kernelValue(1, 1000 + std::uint64_t(k), 0.5, 1.5);

    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });
    for (int k = 0; k < n + 11; ++k)
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });

    // Assembly.
    Assembler as;
    as.aconst(A0, n);           // loop count
    as.aconst(A1, xBase);       // &x[k]
    as.aconst(A2, yBase);       // &y[k]
    as.aconst(A3, zBase);       // &z[k]
    as.sconstf(S5, q);
    as.sconstf(S6, r);
    as.sconstf(S7, t);

    const auto loop = as.here();
    as.loadS(S1, A2, 0);        // y[k]
    as.loadS(S2, A3, 10);       // z[k+10]
    as.loadS(S3, A3, 11);       // z[k+11]
    as.fmul(S2, S6, S2);        // r*z[k+10]
    as.fmul(S3, S7, S3);        // t*z[k+11]
    as.fadd(S2, S2, S3);
    as.fmul(S1, S1, S2);        // y[k]*(...)
    as.fadd(S1, S5, S1);        // q + ...
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A3, A3, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    // Reference expectations.
    ref::loop1(x, y, z, q, r, t, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
