/**
 * @file
 * Livermore Loop 3 — inner product (vectorizable).
 *
 *   Q = 0.0
 *   DO 3 k = 1,n
 * 3   Q = Q + Z(k)*X(k)
 *
 * The scalar compilation is a serial accumulate chain through the
 * floating add unit; the final Q is stored to memory for validation.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop03()
{
    constexpr int n = 400;
    constexpr std::uint64_t zBase = 0;
    constexpr std::uint64_t xBase = 500;
    constexpr std::uint64_t qAddr = 999;

    Kernel kernel;
    kernel.spec = kernelSpecs()[2];
    kernel.memWords = 1000;

    std::vector<double> z(n), x(n);
    for (int k = 0; k < n; ++k) {
        z[k] = kernelValue(3, std::uint64_t(k), 0.5, 1.5);
        x[k] = kernelValue(3, 1000 + std::uint64_t(k), 0.5, 1.5);
    }
    for (int k = 0; k < n; ++k) {
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });
        kernel.initF.push_back({ xBase + std::uint64_t(k), x[k] });
    }

    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, zBase);
    as.aconst(A2, xBase);
    as.sconstf(S3, 0.0);        // accumulator

    const auto loop = as.here();
    as.loadS(S1, A1, 0);        // z[k]
    as.loadS(S2, A2, 0);        // x[k]
    as.fmul(S1, S1, S2);
    as.fadd(S3, S3, S1);        // serial reduction
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.aconst(A1, qAddr);
    as.storeS(A1, 0, S3);
    as.halt();
    kernel.program = as.finish();

    const double q = ref::loop3(z, x, n);
    kernel.expectF.push_back({ qAddr, q });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
