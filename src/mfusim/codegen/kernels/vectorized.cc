/**
 * @file
 * Vectorized variants of Livermore loops 1, 7 and 12 (extension).
 *
 * The paper classifies nine loops as "vectorizable" but studies only
 * their scalar compilations — its subject is the scalar issue
 * logic.  These variants compile three of them the way CFT actually
 * would on a CRAY-1: strip-mined into 64-element vector operations
 * with a VL'd tail strip, constants kept in S registers and applied
 * with scalar-vector forms.  Elementwise computation and FP order
 * match the scalar kernels, so the same C++ references validate the
 * results.
 *
 * Strip loop idiom (n need not divide 64):
 *
 *   A5 = n
 * strip:
 *   A0 = A5 - 64;  if (A0 >= 0) VL = 64 else VL = A5
 *   ... vector body (pointers advanced by 64) ...
 *   A5 -= 64;  A0 = A5 - 1;  if (A0 >= 0) goto strip
 */

#include <stdexcept>

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{

namespace
{

constexpr RegId V1 = regV(1);
constexpr RegId V2 = regV(2);
constexpr RegId V3 = regV(3);
constexpr RegId V4 = regV(4);

/**
 * Emit the strip-mining prologue: selects VL for this strip.
 * Expects A5 = remaining elements, A6 = 64.
 */
void
emitSelectVl(Assembler &as)
{
    const auto full = as.newLabel();
    const auto go = as.newLabel();
    as.asub(A0, A5, A6);        // remaining - 64
    as.brap(full);
    as.vsetlen(A5);             // tail strip
    as.jump(go);
    as.bind(full);
    as.vsetlen(A6);             // full 64-element strip
    as.bind(go);
}

/** Emit the strip-mining epilogue; @p strip is the loop head. */
void
emitStripAdvance(Assembler &as, Assembler::Label strip,
                 std::initializer_list<RegId> pointers)
{
    for (const RegId ptr : pointers)
        as.aadd(ptr, ptr, A6);
    as.asub(A5, A5, A6);
    as.aaddi(A0, A5, -1);
    as.brap(strip);             // continue while remaining >= 1
}

Kernel
buildVectorLoop01()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;
    constexpr std::uint64_t zBase = 1000;
    constexpr double q = 0.5;
    constexpr double r = 0.25;
    constexpr double t = 0.35;

    Kernel kernel;
    kernel.spec = kernelSpecs()[0];
    kernel.memWords = 1500;

    std::vector<double> x(n, 0.0), y(n), z(n + 11);
    for (int k = 0; k < n; ++k)
        y[k] = kernelValue(1, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 11; ++k)
        z[k] = kernelValue(1, 1000 + std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });
    for (int k = 0; k < n + 11; ++k)
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });

    Assembler as;
    as.aconst(A1, xBase);
    as.aconst(A2, yBase);
    as.aconst(A3, zBase);
    as.aconst(A5, n);
    as.aconst(A6, 64);
    as.sconstf(S5, q);
    as.sconstf(S6, r);
    as.sconstf(S7, t);

    const auto strip = as.here();
    emitSelectVl(as);
    as.vload(V1, A2, 1);            // y[k..]
    as.aaddi(A7, A3, 10);
    as.vload(V2, A7, 1);            // z[k+10..]
    as.aaddi(A7, A3, 11);
    as.vload(V3, A7, 1);            // z[k+11..]
    as.vfmulsv(V2, S6, V2);         // r*z[k+10]
    as.vfmulsv(V3, S7, V3);         // t*z[k+11]
    as.vfadd(V2, V2, V3);
    as.vfmul(V1, V1, V2);
    as.vfaddsv(V1, S5, V1);         // q + ...
    as.vstore(A1, 1, V1);
    emitStripAdvance(as, strip, { A1, A2, A3 });
    as.halt();
    kernel.program = as.finish();

    ref::loop1(x, y, z, q, r, t, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

Kernel
buildVectorLoop07()
{
    constexpr int n = 256;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t uBase = 300;
    constexpr std::uint64_t zBase = 600;
    constexpr std::uint64_t yBase = 900;
    constexpr double q = 0.5;
    constexpr double r = 0.375;
    constexpr double t = 0.25;

    Kernel kernel;
    kernel.spec = kernelSpecs()[6];
    kernel.memWords = 1200;

    std::vector<double> x(n, 0.0), u(n + 6), z(n), y(n);
    for (int k = 0; k < n + 6; ++k)
        u[k] = kernelValue(7, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n; ++k) {
        z[k] = kernelValue(7, 1000 + std::uint64_t(k), 0.5, 1.5);
        y[k] = kernelValue(7, 2000 + std::uint64_t(k), 0.5, 1.5);
    }
    for (int k = 0; k < n + 6; ++k)
        kernel.initF.push_back({ uBase + std::uint64_t(k), u[k] });
    for (int k = 0; k < n; ++k) {
        kernel.initF.push_back({ zBase + std::uint64_t(k), z[k] });
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });
    }

    Assembler as;
    as.aconst(A1, xBase);
    as.aconst(A2, uBase);
    as.aconst(A3, zBase);
    as.aconst(A4, yBase);
    as.aconst(A5, n);
    as.aconst(A6, 64);
    as.sconstf(S5, r);
    as.sconstf(S6, t);
    as.sconstf(S7, q);

    const auto uload = [&as](RegId v, int off) {
        as.aaddi(A7, A2, off);
        as.vload(v, A7, 1);
    };

    const auto strip = as.here();
    emitSelectVl(as);
    as.vload(V1, A4, 1);            // y
    as.vload(V2, A3, 1);            // z
    as.vfmulsv(V1, S5, V1);         // r*y
    as.vfadd(V1, V2, V1);           // z + r*y
    as.vfmulsv(V1, S5, V1);         // r*(z + r*y)
    as.vload(V2, A2, 1);            // u[k]
    as.vfadd(V1, V2, V1);           // u[k] + ...
    uload(V2, 1);                   // u[k+1]
    as.vfmulsv(V2, S5, V2);
    uload(V3, 2);                   // u[k+2]
    as.vfadd(V2, V3, V2);
    as.vfmulsv(V2, S5, V2);
    uload(V3, 3);                   // u[k+3]
    as.vfadd(V2, V3, V2);
    uload(V3, 4);                   // u[k+4]
    as.vfmulsv(V3, S7, V3);
    uload(V4, 5);                   // u[k+5]
    as.vfadd(V3, V4, V3);
    as.vfmulsv(V3, S7, V3);
    uload(V4, 6);                   // u[k+6]
    as.vfadd(V3, V4, V3);
    as.vfmulsv(V3, S6, V3);         // t*(...)
    as.vfadd(V2, V2, V3);
    as.vfmulsv(V2, S6, V2);         // t*(...)
    as.vfadd(V1, V1, V2);
    as.vstore(A1, 1, V1);
    emitStripAdvance(as, strip, { A1, A2, A3, A4 });
    as.halt();
    kernel.program = as.finish();

    ref::loop7(x, y, z, u, q, r, t, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

Kernel
buildVectorLoop12()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;

    Kernel kernel;
    kernel.spec = kernelSpecs()[11];
    kernel.memWords = 1000;

    std::vector<double> x(n, 0.0), y(n + 1);
    for (int k = 0; k < n + 1; ++k)
        y[k] = kernelValue(12, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 1; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    as.aconst(A1, xBase);
    as.aconst(A2, yBase);
    as.aconst(A5, n);
    as.aconst(A6, 64);

    const auto strip = as.here();
    emitSelectVl(as);
    as.aaddi(A7, A2, 1);
    as.vload(V1, A7, 1);            // y[k+1..]
    as.vload(V2, A2, 1);            // y[k..]
    as.vfsub(V1, V1, V2);
    as.vstore(A1, 1, V1);
    emitStripAdvance(as, strip, { A1, A2 });
    as.halt();
    kernel.program = as.finish();

    ref::loop12(x, y, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });
    return kernel;
}

} // namespace

const std::vector<int> &
vectorizedLoopIds()
{
    static const std::vector<int> ids = { 1, 7, 12 };
    return ids;
}

Kernel
buildVectorizedKernel(int id)
{
    switch (id) {
      case 1:
        return buildVectorLoop01();
      case 7:
        return buildVectorLoop07();
      case 12:
        return buildVectorLoop12();
      default:
        throw std::invalid_argument(
            "buildVectorizedKernel: loop " + std::to_string(id) +
            " has no vectorized variant (use 1, 7 or 12)");
    }
}

} // namespace mfusim
