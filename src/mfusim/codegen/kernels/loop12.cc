/**
 * @file
 * Livermore Loop 12 — first difference (vectorizable).
 *
 *   DO 12 k = 1,n
 * 12  X(k) = Y(k+1) - Y(k)
 *
 * Fully parallel: every iteration is independent.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop12()
{
    constexpr int n = 400;
    constexpr std::uint64_t xBase = 0;
    constexpr std::uint64_t yBase = 500;

    Kernel kernel;
    kernel.spec = kernelSpecs()[11];
    kernel.memWords = 1000;

    std::vector<double> x(n, 0.0), y(n + 1);
    for (int k = 0; k < n + 1; ++k)
        y[k] = kernelValue(12, std::uint64_t(k), 0.5, 1.5);
    for (int k = 0; k < n + 1; ++k)
        kernel.initF.push_back({ yBase + std::uint64_t(k), y[k] });

    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, xBase);
    as.aconst(A2, yBase);

    const auto loop = as.here();
    as.loadS(S1, A2, 1);        // y[k+1]
    as.loadS(S2, A2, 0);        // y[k]
    as.fsub(S1, S1, S2);
    as.storeS(A1, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    kernel.program = as.finish();

    ref::loop12(x, y, n);
    for (int k = 0; k < n; ++k)
        kernel.expectF.push_back({ xBase + std::uint64_t(k), x[k] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
