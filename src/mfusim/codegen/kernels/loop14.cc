/**
 * @file
 * Livermore Loop 14 — 1-D particle in cell (scalar).
 *
 * Three passes over the particles: (A) locate each particle's cell
 * and gather the field (ex, dex) at that cell; (B) advance velocity
 * and position, split the position into cell number and remainder
 * with fix/float conversions and a 2047 wrap mask; (C) scatter the
 * charge into the density array rh with two read-modify-write
 * updates per particle.
 */

#include "mfusim/codegen/kernels/kernels.hh"
#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace kernels
{

Kernel
buildLoop14()
{
    constexpr int n = 128;
    constexpr int nCells = 512;
    // Contiguous per-particle arrays, addressed from one walking
    // pointer with displacement multiples of n.
    constexpr std::uint64_t grdBase = 0;
    constexpr std::int64_t vxOff = n;
    constexpr std::int64_t xxOff = 2 * n;
    constexpr std::int64_t ixOff = 3 * n;
    constexpr std::int64_t xiOff = 4 * n;
    constexpr std::int64_t ex1Off = 5 * n;
    constexpr std::int64_t dex1Off = 6 * n;
    constexpr std::int64_t irOff = 7 * n;
    constexpr std::int64_t rxOff = 8 * n;
    constexpr std::uint64_t exBase = 1200;      // ex, then dex at +512
    constexpr std::uint64_t rhBase = 2300;      // 2050 entries
    constexpr double flx = 1.5;

    Kernel kernel;
    kernel.spec = kernelSpecs()[13];
    kernel.memWords = 4500;

    std::vector<double> grd(n), ex(nCells), dex(nCells);
    std::vector<double> vx(n, 0.0), xx(n, 0.0), rx(n, 0.0);
    std::vector<std::int64_t> ir(n, 0);
    std::vector<double> rh(2050, 0.0);
    for (int k = 0; k < n; ++k)
        grd[k] = kernelValue(14, std::uint64_t(k), 2.0, 510.0);
    for (int i = 0; i < nCells; ++i) {
        ex[i] = kernelValue(14, 1000 + std::uint64_t(i), 0.0, 1.0);
        dex[i] = kernelValue(14, 3000 + std::uint64_t(i), 0.0, 0.01);
    }

    for (int k = 0; k < n; ++k)
        kernel.initF.push_back({ grdBase + std::uint64_t(k), grd[k] });
    for (int i = 0; i < nCells; ++i) {
        kernel.initF.push_back({ exBase + std::uint64_t(i), ex[i] });
        kernel.initF.push_back(
            { exBase + nCells + std::uint64_t(i), dex[i] });
    }

    Assembler as;
    as.aconst(A3, exBase);
    as.aconst(A6, rhBase);
    as.sconstf(S1, flx);
    as.tmovs(regT(0), S1);
    as.sconstf(S1, 1.0);
    as.tmovs(regT(1), S1);
    as.sconsti(S5, 0);
    as.sconsti(S6, 1);
    as.sconsti(S7, 2047);

    // ---- pass A: gather field at each particle's cell ------------
    as.aconst(A0, n);
    as.aconst(A1, grdBase);
    const auto passA = as.here();
    as.loadS(S1, A1, 0);            // grd[k]
    as.sfix(S2, S1);                // ix
    as.storeS(A1, ixOff, S2);
    as.sfloat(S3, S2);              // xi
    as.storeS(A1, xiOff, S3);
    as.amovs(A4, S2);
    as.aadd(A4, A3, A4);            // &ex[ix]
    as.loadS(S4, A4, -1);           // ex[ix-1]
    as.storeS(A1, ex1Off, S4);
    as.loadS(S4, A4, nCells - 1);   // dex[ix-1]
    as.storeS(A1, dex1Off, S4);
    as.storeS(A1, vxOff, S5);       // vx = 0
    as.storeS(A1, xxOff, S5);       // xx = 0
    as.aaddi(A1, A1, 1);
    as.aaddi(A0, A0, -1);
    as.branz(passA);

    // ---- pass B: advance particles ---------------------------------
    as.aconst(A0, n);
    as.aconst(A1, grdBase);
    const auto passB = as.here();
    as.loadS(S1, A1, xxOff);        // xx
    as.loadS(S2, A1, xiOff);        // xi
    as.fsub(S1, S1, S2);
    as.loadS(S2, A1, dex1Off);
    as.fmul(S1, S1, S2);            // (xx-xi)*dex1
    as.loadS(S2, A1, ex1Off);
    as.fadd(S1, S2, S1);            // ex1 + ...
    as.loadS(S2, A1, vxOff);
    as.fadd(S2, S2, S1);            // vx'
    as.storeS(A1, vxOff, S2);
    as.loadS(S1, A1, xxOff);
    as.fadd(S1, S1, S2);            // xx + vx'
    as.smovt(S3, regT(0));
    as.fadd(S1, S1, S3);            // + flx
    as.sfix(S2, S1);                // i
    as.sfloat(S3, S2);
    as.fsub(S3, S1, S3);            // rx = xx - i
    as.storeS(A1, rxOff, S3);
    as.sand_(S2, S2, S7);
    as.sadd(S2, S2, S6);            // ir = (i & 2047) + 1
    as.storeS(A1, irOff, S2);
    as.sfloat(S4, S2);
    as.fadd(S3, S3, S4);            // xx = rx + ir
    as.storeS(A1, xxOff, S3);
    as.aaddi(A1, A1, 1);
    as.aaddi(A0, A0, -1);
    as.branz(passB);

    // ---- pass C: scatter charge ------------------------------------
    as.aconst(A0, n);
    as.aconst(A1, grdBase);
    const auto passC = as.here();
    as.loadS(S1, A1, irOff);        // ir
    as.loadS(S2, A1, rxOff);        // rx
    as.amovs(A4, S1);
    as.aadd(A4, A6, A4);            // &rh[ir]
    as.loadS(S3, A4, -1);
    as.smovt(S4, regT(1));          // 1.0
    as.fsub(S4, S4, S2);            // 1 - rx
    as.fadd(S3, S3, S4);
    as.storeS(A4, -1, S3);          // rh[ir-1]
    as.loadS(S3, A4, 0);
    as.fadd(S3, S3, S2);
    as.storeS(A4, 0, S3);           // rh[ir]
    as.aaddi(A1, A1, 1);
    as.aaddi(A0, A0, -1);
    as.branz(passC);
    as.halt();
    kernel.program = as.finish();

    ref::loop14(grd, ex, dex, vx, xx, ir, rx, rh, flx, n);
    for (int k = 0; k < n; ++k) {
        kernel.expectF.push_back(
            { grdBase + std::uint64_t(vxOff + k), vx[k] });
        kernel.expectF.push_back(
            { grdBase + std::uint64_t(xxOff + k), xx[k] });
        kernel.expectF.push_back(
            { grdBase + std::uint64_t(rxOff + k), rx[k] });
        kernel.expectI.push_back(
            { grdBase + std::uint64_t(irOff + k), ir[k] });
    }
    for (std::size_t i = 0; i < rh.size(); ++i)
        kernel.expectF.push_back({ rhBase + i, rh[i] });

    return kernel;
}

} // namespace kernels
} // namespace mfusim
