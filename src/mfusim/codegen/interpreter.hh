/**
 * @file
 * Functional interpreter for the base architecture.
 *
 * The Interpreter executes a static Program with full architectural
 * semantics (register files, word-addressed memory, branch outcomes)
 * and records the executed instruction stream as a DynTrace.  It is
 * the mfusim substitute for the paper's instruction-trace generation
 * step: "Instruction traces were generated for each of the benchmark
 * programs and then used to drive the simulations."
 *
 * Because it computes real values, kernel results can be validated
 * against plain C++ reference implementations, guaranteeing that the
 * traces that drive the timing experiments execute the intended
 * computation.
 */

#ifndef MFUSIM_CODEGEN_INTERPRETER_HH
#define MFUSIM_CODEGEN_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mfusim/codegen/assembler.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/**
 * Executes Programs and produces DynTraces.
 *
 * Memory is an array of 64-bit words (the CRAY-1 is word addressed);
 * S and T registers hold raw 64-bit patterns interpreted as two's
 * complement integers or IEEE doubles depending on the operation,
 * A and B registers hold signed integers (addresses / counters).
 */
class Interpreter
{
  public:
    /**
     * @param program  the program to execute (must end in kHalt on
     *                 every path)
     * @param memWords size of the data memory in 64-bit words
     */
    Interpreter(const Program &program, std::size_t memWords);

    // ---- pre/post-run state access --------------------------------
    void pokeMem(std::uint64_t addr, std::uint64_t bits);
    void pokeMemF(std::uint64_t addr, double value);
    std::uint64_t peekMem(std::uint64_t addr) const;
    double peekMemF(std::uint64_t addr) const;

    std::int64_t peekA(unsigned i) const { return aRegs_[i]; }
    std::uint64_t peekS(unsigned i) const { return sRegs_[i]; }
    double peekSF(unsigned i) const;
    /** Element @p k of vector register V<i> (extension). */
    double peekVF(unsigned i, unsigned k) const;
    unsigned peekVL() const { return vl_; }

    std::size_t memWords() const { return memory_.size(); }

    /**
     * Run the program from instruction 0 until kHalt, recording the
     * trace.
     *
     * @param traceName  name stored in the returned DynTrace
     * @param maxDynOps  safety valve against runaway programs; an
     *                   exception is thrown when exceeded
     * @throws std::runtime_error on out-of-bounds memory access,
     *         PC escape, or dynamic-op overflow.
     */
    DynTrace run(std::string traceName,
                 std::uint64_t maxDynOps = 50'000'000);

  private:
    std::uint64_t loadWord(std::int64_t addr) const;
    void storeWord(std::int64_t addr, std::uint64_t bits);

    const Program &program_;
    std::array<std::int64_t, kNumARegs> aRegs_{};
    std::array<std::uint64_t, kNumSRegs> sRegs_{};
    std::array<std::int64_t, kNumBRegs> bRegs_{};
    std::array<std::uint64_t, kNumTRegs> tRegs_{};
    std::array<std::array<double, kVectorLength>, kNumVRegs> vRegs_{};
    unsigned vl_ = kVectorLength;
    std::vector<std::uint64_t> memory_;
};

} // namespace mfusim

#endif // MFUSIM_CODEGEN_INTERPRETER_HH
