/**
 * @file
 * Synthetic workload generators.
 */

#include "mfusim/codegen/synthetic.hh"

#include <cassert>
#include <vector>

namespace mfusim
{
namespace synthetic
{

namespace
{

DynOp
mk(Op op, RegId dst, RegId src_a = kNoReg, RegId src_b = kNoReg)
{
    DynOp dyn;
    dyn.op = op;
    dyn.dst = dst;
    dyn.srcA = src_a;
    dyn.srcB = src_b;
    return dyn;
}

} // namespace

DynTrace
chain(std::size_t n, Op op)
{
    DynTrace trace("synthetic-chain");
    const bool two_src = traitsOf(op).shape == OperandShape::kTwoSrc;
    // S1 = f(S1 [, S2]) forever: pure serial flow through S1.
    for (std::size_t i = 0; i < n; ++i)
        trace.append(mk(op, S1, S1, two_src ? S2 : kNoReg));
    return trace;
}

DynTrace
independent(std::size_t n, Op op)
{
    DynTrace trace("synthetic-independent");
    const bool two_src = traitsOf(op).shape == OperandShape::kTwoSrc;
    // Destinations rotate S1..S7; the only sources are S0 (never
    // written), so there are no RAW dependences at all.
    for (std::size_t i = 0; i < n; ++i) {
        trace.append(mk(op, regS(1 + unsigned(i % 7)), S0,
                        two_src ? S0 : kNoReg));
    }
    return trace;
}

DynTrace
reductionTree(unsigned leaves)
{
    // The tree must be expressible with last-writer (renamed)
    // dependences in the 8-register S file: level ops read the two
    // adjacent results of the previous level, so the width may not
    // exceed the register count.
    assert((leaves == 2 || leaves == 4 || leaves == 8) &&
           "leaves must be 2, 4 or 8");
    DynTrace trace("synthetic-tree");

    // Level 0: `leaves` independent loads into S0..S(leaves-1).
    for (unsigned i = 0; i < leaves; ++i)
        trace.append(mk(Op::kLoadS, regS(i), A1));
    // Each level halves: op i combines S(2i) and S(2i+1) into S(i).
    // Since i < 2i for i > 0 and op 0 reads its own slot first, no
    // producer is overwritten before its consumer reads it.
    for (unsigned width = leaves / 2; width >= 1; width /= 2) {
        for (unsigned i = 0; i < width; ++i) {
            trace.append(mk(Op::kFAdd, regS(i), regS(2 * i),
                            regS(2 * i + 1)));
        }
        if (width == 1)
            break;
    }
    return trace;
}

DynTrace
wawStorm(std::size_t n)
{
    DynTrace trace("synthetic-waw");
    // All write S1; sources are S0 (never written): zero RAW, all
    // WAW.  Alternating latencies (fmul 7 / logical 1) make the
    // register reservation the binding constraint on machines
    // without renaming.
    for (std::size_t i = 0; i < n; ++i)
        trace.append(mk(i % 2 == 0 ? Op::kFMul : Op::kSAnd, S1, S0,
                        S0));
    return trace;
}

DynTrace
memoryStream(std::size_t n, unsigned loadPercent)
{
    DynTrace trace("synthetic-memory");
    for (std::size_t i = 0; i < n; ++i) {
        const bool is_load = (i % 100) < loadPercent;
        const RegId addr = regA(1 + unsigned(i % 7));
        if (is_load) {
            trace.append(
                mk(Op::kLoadS, regS(1 + unsigned(i % 7)), addr));
        } else {
            trace.append(mk(Op::kStoreS, kNoReg, addr, S0));
        }
    }
    return trace;
}

DynTrace
loopPattern(std::size_t bodyOps, std::size_t iters)
{
    DynTrace trace("synthetic-loop");
    for (std::size_t it = 0; it < iters; ++it) {
        for (std::size_t i = 0; i < bodyOps; ++i)
            trace.append(mk(Op::kSAnd, regS(1 + unsigned(i % 7)),
                            S0, S0));
        trace.append(mk(Op::kAAddI, A0, A0));   // decrement counter
        DynOp br = mk(Op::kBrANZ, kNoReg, A0);
        br.taken = it + 1 < iters;
        br.backward = true;
        trace.append(br);
    }
    return trace;
}

} // namespace synthetic
} // namespace mfusim
