/**
 * @file
 * Plain C++ reference implementations of the 14 Livermore loops.
 *
 * These are the golden models the assembly kernels are validated
 * against.  Each function mirrors the Fortran kernel of McMahon's
 * "FORTRAN CPU Performance Analysis" suite, restated in C++ with the
 * exact floating-point association order used by the corresponding
 * assembly kernel, so results agree to rounding noise.
 *
 * refDiv() reproduces the CRAY-1 divide idiom (reciprocal
 * approximation plus one Newton-Raphson step) that Assembler::fdiv
 * expands to, so kernels containing divides validate bit-for-bit in
 * structure.
 */

#ifndef MFUSIM_CODEGEN_REFERENCE_KERNELS_HH
#define MFUSIM_CODEGEN_REFERENCE_KERNELS_HH

#include <cstdint>
#include <vector>

namespace mfusim
{
namespace ref
{

/** The CRAY-1 reciprocal-approximation divide: num / den. */
double refDiv(double num, double den);

/** LL1: x[k] = q + y[k]*(r*z[k+10] + t*z[k+11]). */
void loop1(std::vector<double> &x, const std::vector<double> &y,
           const std::vector<double> &z, double q, double r, double t,
           int n);

/** LL2: incomplete Cholesky conjugate gradient excerpt (in-place x). */
void loop2(std::vector<double> &x, const std::vector<double> &v, int n);

/** LL3: inner product q = sum z[k]*x[k]. */
double loop3(const std::vector<double> &z, const std::vector<double> &x,
             int n);

/** LL4: banded linear equations. */
void loop4(std::vector<double> &x, const std::vector<double> &y, int n,
           int m);

/** LL5: tri-diagonal elimination x[i] = z[i]*(y[i] - x[i-1]). */
void loop5(std::vector<double> &x, const std::vector<double> &y,
           const std::vector<double> &z, int n);

/** LL6: w[i] = 0.01 + sum_k b[k][i]*w[i-k-1] (b flattened [n][n]). */
void loop6(std::vector<double> &w, const std::vector<double> &b, int n);

/** LL7: equation of state fragment. */
void loop7(std::vector<double> &x, const std::vector<double> &y,
           const std::vector<double> &z, const std::vector<double> &u,
           double q, double r, double t, int n);

/**
 * LL8: ADI integration.  u1, u2, u3 are flattened [2][ny+1][5]
 * arrays; du1..du3 are scratch of length ny+1.
 */
void loop8(std::vector<double> &u1, std::vector<double> &u2,
           std::vector<double> &u3, std::vector<double> &du1,
           std::vector<double> &du2, std::vector<double> &du3,
           const double a[9], double sig, int ny);

/** LL9: integrate predictors; px flattened [n][13]. */
void loop9(std::vector<double> &px, const double dm[7], double c0,
           int n);

/** LL10: difference predictors; px, cx flattened [n][14]. */
void loop10(std::vector<double> &px, const std::vector<double> &cx,
            int n);

/** LL11: first sum x[k] = x[k-1] + y[k]. */
void loop11(std::vector<double> &x, const std::vector<double> &y, int n);

/** LL12: first difference x[k] = y[k+1] - y[k]. */
void loop12(std::vector<double> &x, const std::vector<double> &y, int n);

/**
 * LL13: 2-D particle-in-cell (mfusim adaptation: 32x32 grids, wrap
 * mask after indirect index increments).  p is flattened [n][4];
 * b, c, h are flattened 32x32 double grids; e, f are flattened 32x32
 * integer grids; yz holds y (64 entries) followed by z (64 entries).
 */
void loop13(std::vector<double> &p, const std::vector<double> &b,
            const std::vector<double> &c, std::vector<double> &h,
            const std::vector<std::int64_t> &e,
            const std::vector<std::int64_t> &f,
            const std::vector<double> &yz, int n);

/**
 * LL14: 1-D particle-in-cell.  grd holds cell coordinates in
 * [1, nCells); ex/dex have nCells entries; rh has 2050 entries.
 * Outputs: vx, xx, ir, rx and the charge density rh.
 */
void loop14(const std::vector<double> &grd, const std::vector<double> &ex,
            const std::vector<double> &dex, std::vector<double> &vx,
            std::vector<double> &xx, std::vector<std::int64_t> &ir,
            std::vector<double> &rx, std::vector<double> &rh,
            double flx, int n);

} // namespace ref
} // namespace mfusim

#endif // MFUSIM_CODEGEN_REFERENCE_KERNELS_HH
