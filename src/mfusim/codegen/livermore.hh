/**
 * @file
 * The 14 Lawrence Livermore Loops as base-architecture programs.
 *
 * The paper's benchmark programs were "the original 14 Lawrence
 * Livermore Loops", divided into the 5 scalar loops (5, 6, 11, 13,
 * 14) and the 9 vectorizable loops (1, 2, 3, 4, 7, 8, 9, 10, 12).
 * mfusim hand-compiles each kernel to the base ISA the way a
 * straightforward, non-optimizing compiler would: greedy register
 * allocation, induction-variable addressing, no unrolling, no
 * instruction scheduling (the paper: "we did not make any
 * modifications to the code").
 *
 * Every kernel comes with a plain C++ reference implementation
 * (reference_kernels.hh) run on identical input data; the memory
 * image after interpreting the assembly is validated against the
 * reference, guaranteeing the traces that drive all timing
 * experiments compute the intended kernels.
 *
 * Trip counts and adaptations (documented per kernel in the
 * loopNN.cc files):
 *  - vector lengths are in the few-hundreds (steady-state issue rates
 *    converge after tens of iterations);
 *  - kernels 13/14 keep LFK's mixed integer/float particle-in-cell
 *    structure but add an explicit wrap mask after the indirect index
 *    increments so that synthetic data can never index out of grid
 *    bounds.
 */

#ifndef MFUSIM_CODEGEN_LIVERMORE_HH
#define MFUSIM_CODEGEN_LIVERMORE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mfusim/codegen/assembler.hh"
#include "mfusim/core/trace.hh"

namespace mfusim
{

/** Identity of one Livermore loop. */
struct KernelSpec
{
    int id;                 //!< 1..14
    const char *name;       //!< e.g. "hydro fragment"
    bool vectorizable;      //!< the paper's loop classification
};

/** Floating-point memory cell initialization / expectation. */
struct MemValF
{
    std::uint64_t addr;
    double value;
};

/** Integer memory cell initialization / expectation. */
struct MemValI
{
    std::uint64_t addr;
    std::int64_t value;
};

/**
 * A fully assembled, runnable, checkable benchmark kernel.
 */
struct Kernel
{
    KernelSpec spec;
    Program program;
    std::size_t memWords = 0;
    std::vector<MemValF> initF;     //!< pre-run FP memory image
    std::vector<MemValI> initI;     //!< pre-run integer memory image
    std::vector<MemValF> expectF;   //!< post-run FP expectations
    std::vector<MemValI> expectI;   //!< post-run integer expectations
};

/** Outcome of executing a kernel and checking it against reference. */
struct KernelRun
{
    DynTrace trace;
    std::size_t checkedCells = 0;   //!< number of cells compared
    std::size_t mismatches = 0;     //!< cells beyond tolerance
    double maxRelError = 0.0;       //!< worst FP relative error seen
};

/** Specs of all 14 loops, in id order. */
const std::vector<KernelSpec> &kernelSpecs();

/** The paper's scalar loop ids: {5, 6, 11, 13, 14}. */
const std::vector<int> &scalarLoopIds();

/** The paper's vectorizable loop ids: {1, 2, 3, 4, 7, 8, 9, 10, 12}. */
const std::vector<int> &vectorizableLoopIds();

/** Build (assemble + compute reference expectations for) loop @p id. */
Kernel buildKernel(int id);

/**
 * Loops with software-unrolled variants: 1, 5, 11, 12 (two parallel
 * streaming loops and two first-order recurrences).
 */
const std::vector<int> &unrollableLoopIds();

/**
 * Build loop @p id unrolled by @p factor (1, 2, 4 or 8).
 *
 * The paper keeps compiled code untouched ("we did not make any
 * modifications to the code") but remarks that "loop unrolling will
 * in some cases shorten the critical path because some of the
 * program's branches are removed".  These variants quantify that:
 * identical element-wise computation and FP evaluation order (so the
 * same reference validates them), with @p factor bodies per
 * loop-closing branch.  factor == 1 reproduces the canonical kernel.
 */
Kernel buildUnrolledKernel(int id, int factor);

/** Loops with CRAY-1 vector-unit variants (extension): 1, 7, 12. */
const std::vector<int> &vectorizedLoopIds();

/**
 * Build loop @p id compiled for the vector unit: strip-mined
 * 64-element vector operations with a VL'd tail, validated against
 * the same C++ reference as the scalar kernel.  Only the CRAY-like
 * ScoreboardSim (and SimpleSim) can time the resulting traces; the
 * multiple-issue machines are scalar-only, as in the paper.
 */
Kernel buildVectorizedKernel(int id);

/**
 * Execute @p kernel in the functional Interpreter and validate the
 * final memory image against the reference expectations.
 */
KernelRun runKernel(const Kernel &kernel, std::string traceName = "");

/** Convenience: buildKernel + runKernel; throws on validation failure. */
DynTrace traceKernel(int id);

/**
 * Deterministic synthetic benchmark data: a reproducible double in
 * [lo, hi) derived from (kernelId, index) by a splitmix64 hash.  The
 * assembly kernels and the C++ references both draw their inputs
 * from this function, so their results are directly comparable.
 */
double kernelValue(int kernelId, std::uint64_t index,
                   double lo, double hi);

} // namespace mfusim

#endif // MFUSIM_CODEGEN_LIVERMORE_HH
