/**
 * @file
 * Program container and macro-assembler for the base architecture.
 *
 * The paper drove its simulators with traces of CRAY Fortran-compiled
 * Livermore Loops.  mfusim substitutes a small macro-assembler: each
 * benchmark kernel is written by hand the way a straightforward,
 * non-optimizing compiler of the era would have compiled it (greedy
 * register allocation, induction-variable addressing, no unrolling,
 * no instruction scheduling), then executed by the Interpreter to
 * produce a dynamic trace.
 */

#ifndef MFUSIM_CODEGEN_ASSEMBLER_HH
#define MFUSIM_CODEGEN_ASSEMBLER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mfusim/core/instruction.hh"
#include "mfusim/core/opcode.hh"
#include "mfusim/core/registers.hh"

namespace mfusim
{

/** A finished static program: a flat vector of instructions. */
struct Program
{
    std::vector<Instruction> code;

    std::size_t size() const { return code.size(); }
    const Instruction &operator[](StaticIndex i) const { return code[i]; }

    /** Multi-line disassembly listing. */
    std::string disassemble() const;
};

/**
 * Builder for Programs with forward-reference label support.
 *
 * Typical use:
 * @code
 *   Assembler as;
 *   as.aconst(A1, 100);                 // loop counter
 *   const auto loop = as.here();
 *   as.loadS(S1, A2, 0);
 *   ...
 *   as.aaddi(A0, A1, -1);
 *   as.amovs(A1, ...);                  // etc.
 *   as.branz(loop);                     // branch on A0 != 0
 *   as.halt();
 *   Program p = as.finish();
 * @endcode
 *
 * Register-class constraints of the base ISA (e.g. address adds only
 * operate on A registers) are checked with assertions at emit time.
 */
class Assembler
{
  public:
    /** Opaque label handle. */
    struct Label
    {
        int id = -1;
    };

    /** Create a fresh, unbound label (for forward branches). */
    Label newLabel();

    /** Bind @p label to the current emission point. */
    void bind(Label label);

    /** Create a label bound to the current emission point. */
    Label here();

    // ---- address-register operations -----------------------------
    void aconst(RegId dst, std::int64_t value);
    void aadd(RegId dst, RegId srcA, RegId srcB);
    void aaddi(RegId dst, RegId srcA, std::int64_t imm);
    void asub(RegId dst, RegId srcA, RegId srcB);
    void amul(RegId dst, RegId srcA, RegId srcB);
    void amovs(RegId dst, RegId src);   //!< Ai = Sj
    void amovb(RegId dst, RegId src);   //!< Ai = Bk
    void bmova(RegId dst, RegId src);   //!< Bk = Ai

    // ---- scalar-register operations -------------------------------
    void sconsti(RegId dst, std::int64_t value);    //!< integer bits
    void sconstf(RegId dst, double value);          //!< FP bit pattern
    void sadd(RegId dst, RegId srcA, RegId srcB);
    void ssub(RegId dst, RegId srcA, RegId srcB);
    void sand_(RegId dst, RegId srcA, RegId srcB);
    void sor_(RegId dst, RegId srcA, RegId srcB);
    void sxor_(RegId dst, RegId srcA, RegId srcB);
    void sshl(RegId dst, RegId src, unsigned count);
    void sshr(RegId dst, RegId src, unsigned count);
    void smovs(RegId dst, RegId src);   //!< Si = Sj
    void smova(RegId dst, RegId src);   //!< Si = Aj
    void smovt(RegId dst, RegId src);   //!< Si = Tk
    void tmovs(RegId dst, RegId src);   //!< Tk = Si

    // ---- floating point -------------------------------------------
    void fadd(RegId dst, RegId srcA, RegId srcB);
    void fsub(RegId dst, RegId srcA, RegId srcB);
    void fmul(RegId dst, RegId srcA, RegId srcB);
    void frecip(RegId dst, RegId src);
    void sfix(RegId dst, RegId src);    //!< double -> int64
    void sfloat(RegId dst, RegId src);  //!< int64 -> double

    /**
     * Full-precision divide idiom: dst = num / den, expanded as the
     * CRAY-1 reciprocal-approximation sequence (frecip + one
     * Newton-Raphson correction step + final multiply).  Uses
     * @p tmpA and @p tmpB as scratch S registers.
     */
    void fdiv(RegId dst, RegId num, RegId den, RegId tmpA, RegId tmpB);

    // ---- vector unit (extension) ------------------------------------
    void vsetlen(RegId srcA);                   //!< VL = Aj
    void vload(RegId dst, RegId base, std::int64_t stride);
    void vstore(RegId base, std::int64_t stride, RegId src);
    void vfadd(RegId dst, RegId srcA, RegId srcB);   //!< V = V + V
    void vfsub(RegId dst, RegId srcA, RegId srcB);
    void vfmul(RegId dst, RegId srcA, RegId srcB);
    void vfaddsv(RegId dst, RegId srcS, RegId srcV); //!< V = S + V
    void vfmulsv(RegId dst, RegId srcS, RegId srcV);

    // ---- memory references (word addressed) ------------------------
    void loadA(RegId dst, RegId base, std::int64_t disp);
    void loadS(RegId dst, RegId base, std::int64_t disp);
    void storeA(RegId base, std::int64_t disp, RegId src);
    void storeS(RegId base, std::int64_t disp, RegId src);

    // ---- control ----------------------------------------------------
    void braz(Label target);    //!< branch if A0 == 0
    void branz(Label target);   //!< branch if A0 != 0
    void brap(Label target);    //!< branch if A0 >= 0
    void bram(Label target);    //!< branch if A0 < 0
    void brsz(Label target);    //!< branch if S0 == 0
    void brsnz(Label target);   //!< branch if S0 != 0
    void brsp(Label target);    //!< branch if S0 >= 0
    void brsm(Label target);    //!< branch if S0 < 0
    void jump(Label target);
    void halt();

    /** Number of instructions emitted so far. */
    StaticIndex position() const;

    /**
     * Resolve all branch targets and return the finished Program.
     * Throws std::logic_error if any referenced label is unbound.
     */
    Program finish();

  private:
    void emit(const Instruction &inst);
    void emitBranch(Op op, RegId cond, Label target);

    std::vector<Instruction> code_;
    std::vector<std::int64_t> labelTargets_;    //!< -1 while unbound
    // (instruction index, label id) pairs awaiting resolution
    std::vector<std::pair<StaticIndex, int>> fixups_;
};

} // namespace mfusim

#endif // MFUSIM_CODEGEN_ASSEMBLER_HH
