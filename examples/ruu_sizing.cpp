/**
 * @file
 * RUU sizing study: how much reservation/reorder buffering a given
 * memory latency demands -- the design question behind the paper's
 * Tables 7/8 ("an issuing scheme that uses dependency resolution can
 * tolerate slower memory by increasing the amount of buffer
 * storage").
 *
 *   $ ./examples/ruu_sizing            # both loop classes
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "mfusim/mfusim.hh"

using namespace mfusim;

namespace
{

double
ruuRate(LoopClass cls, const MachineConfig &cfg, unsigned width,
        unsigned size)
{
    return meanIssueRate(
        [width, size](const MachineConfig &c)
            -> std::unique_ptr<Simulator> {
            return std::make_unique<RuuSim>(
                RuuConfig{ width, size, BusKind::kPerUnit }, c);
        },
        cls, cfg);
}

} // namespace

int
main()
{
    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        std::printf("%s loops: issue rate vs RUU size (width 2)\n",
                    loopClassName(cls));

        AsciiTable table;
        table.setHeader({ "RUU size", "M11BR5", "M5BR5",
                          "M11 penalty" });
        unsigned knee_m11 = 0;
        double best_m11 = 0.0;
        for (unsigned size :
             { 4u, 8u, 12u, 16u, 24u, 32u, 48u, 64u, 96u, 128u }) {
            const double m11 =
                ruuRate(cls, configM11BR5(), 2, size);
            const double m5 = ruuRate(cls, configM5BR5(), 2, size);
            table.addRow({
                std::to_string(size),
                AsciiTable::num(m11),
                AsciiTable::num(m5),
                AsciiTable::num((m5 - m11) / m5 * 100, 0) + "%",
            });
            if (m11 > best_m11 * 1.01) {
                best_m11 = m11;
                knee_m11 = size;
            }
        }
        table.print(std::cout);
        std::printf(
            "last size with >1%% gain at M11: %u entries\n\n",
            knee_m11);
    }

    std::printf(
        "Design takeaway (matches the paper): slow memory needs "
        "roughly twice\nthe buffering to reach the same fraction of "
        "its best rate -- buffer\nstorage substitutes for memory "
        "speed under dependency resolution.\n");
    return 0;
}
