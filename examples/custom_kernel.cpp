/**
 * @file
 * Bring-your-own-kernel: write a new benchmark with the assembler,
 * validate it functionally against a plain C++ model, then sweep it
 * across issue organizations -- the workflow for extending the
 * paper's study to new workloads.
 *
 * The kernel is complex multiply-accumulate over interleaved arrays:
 *
 *   for k in 0..n-1:
 *     acc_re += a_re[k]*b_re[k] - a_im[k]*b_im[k]
 *     acc_im += a_re[k]*b_im[k] + a_im[k]*b_re[k]
 *
 * with a divide by |b|^2 at the end (exercising the CRAY divide
 * idiom).
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "mfusim/mfusim.hh"

using namespace mfusim;

int
main()
{
    constexpr int n = 128;
    constexpr std::int64_t a_base = 0;      // interleaved re,im
    constexpr std::int64_t b_base = 300;
    constexpr std::int64_t out_base = 600;

    // ---- assembly ---------------------------------------------------
    Assembler as;
    as.aconst(A0, n);
    as.aconst(A1, a_base);
    as.aconst(A2, b_base);
    as.sconstf(S5, 0.0);        // acc_re
    as.sconstf(S6, 0.0);        // acc_im

    const auto loop = as.here();
    as.loadS(S1, A1, 0);        // a_re
    as.loadS(S2, A1, 1);        // a_im
    as.loadS(S3, A2, 0);        // b_re
    as.loadS(S4, A2, 1);        // b_im
    as.fmul(S7, S1, S3);        // a_re*b_re
    as.fadd(S5, S5, S7);
    as.fmul(S7, S2, S4);        // a_im*b_im
    as.fsub(S5, S5, S7);        // acc_re
    as.fmul(S7, S1, S4);        // a_re*b_im
    as.fadd(S6, S6, S7);
    as.fmul(S7, S2, S3);        // a_im*b_re
    as.fadd(S6, S6, S7);        // acc_im
    as.aaddi(A1, A1, 2);
    as.aaddi(A2, A2, 2);
    as.aaddi(A0, A0, -1);
    as.branz(loop);

    // Normalize acc_re by (b_re[0]^2 + b_im[0]^2) via the CRAY
    // reciprocal divide idiom.
    as.aconst(A2, b_base);
    as.loadS(S1, A2, 0);
    as.loadS(S2, A2, 1);
    as.fmul(S1, S1, S1);
    as.fmul(S2, S2, S2);
    as.fadd(S1, S1, S2);        // |b0|^2
    as.fdiv(S3, S5, S1, S2, S4);
    as.aconst(A3, out_base);
    as.storeS(A3, 0, S3);
    as.storeS(A3, 1, S5);
    as.storeS(A3, 2, S6);
    as.halt();
    Program program = as.finish();

    // ---- functional validation --------------------------------------
    Interpreter interp(program, 700);
    double acc_re = 0.0, acc_im = 0.0;
    std::vector<double> b0(2, 0.0);
    for (int k = 0; k < n; ++k) {
        const double are = kernelValue(99, std::uint64_t(k), -1, 1);
        const double aim =
            kernelValue(99, 1000 + std::uint64_t(k), -1, 1);
        const double bre =
            kernelValue(99, 2000 + std::uint64_t(k), -1, 1);
        const double bim =
            kernelValue(99, 3000 + std::uint64_t(k), -1, 1);
        interp.pokeMemF(std::uint64_t(a_base + 2 * k), are);
        interp.pokeMemF(std::uint64_t(a_base + 2 * k + 1), aim);
        interp.pokeMemF(std::uint64_t(b_base + 2 * k), bre);
        interp.pokeMemF(std::uint64_t(b_base + 2 * k + 1), bim);
        acc_re = (acc_re + are * bre) - aim * bim;
        acc_im = (acc_im + are * bim) + aim * bre;
        if (k == 0) {
            b0[0] = bre;
            b0[1] = bim;
        }
    }
    const DynTrace trace = interp.run("cmacc");
    const double norm = b0[0] * b0[0] + b0[1] * b0[1];
    const double expected = ref::refDiv(acc_re, norm);

    const double got = interp.peekMemF(out_base);
    std::printf("functional check: got %.12f, expected %.12f (%s)\n\n",
                got, expected,
                std::fabs(got - expected) < 1e-9 * std::fabs(expected)
                    ? "OK"
                    : "MISMATCH");

    // ---- timing sweep -------------------------------------------------
    std::printf("issue-rate sweep over organizations (M11BR5):\n");
    const MachineConfig cfg = configM11BR5();
    const LimitResult limit = computeLimits(trace, cfg);

    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    std::printf("  %-26s %.3f\n", "CRAY-like single issue",
                cray.run(trace).issueRate());
    for (unsigned w : { 2u, 4u }) {
        MultiIssueSim seq({ w, false, BusKind::kPerUnit, false }, cfg);
        MultiIssueSim ooo({ w, true, BusKind::kPerUnit, false }, cfg);
        std::printf("  seq issue w=%-14u %.3f\n", w,
                    seq.run(trace).issueRate());
        std::printf("  ooo issue w=%-14u %.3f\n", w,
                    ooo.run(trace).issueRate());
    }
    for (unsigned w : { 1u, 2u, 4u }) {
        RuuSim ruu({ w, 48, BusKind::kPerUnit }, cfg);
        std::printf("  RUU w=%u size=48%9s %.3f\n", w, "",
                    ruu.run(trace).issueRate());
    }
    std::printf("  %-26s %.3f\n", "dataflow limit",
                limit.actualRate);
    return 0;
}
