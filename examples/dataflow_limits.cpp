/**
 * @file
 * Dataflow-limit analysis walkthrough: per-loop pseudo-dataflow,
 * resource and serial limits, and how far each simulated machine
 * falls from them -- the paper's section 4 methodology applied loop
 * by loop.
 *
 *   $ ./examples/dataflow_limits [M11BR5|M11BR2|M5BR5|M5BR2]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "mfusim/mfusim.hh"

using namespace mfusim;

int
main(int argc, char **argv)
{
    MachineConfig cfg = configM11BR5();
    if (argc > 1) {
        bool found = false;
        for (const MachineConfig &candidate : standardConfigs()) {
            if (candidate.name() == argv[1]) {
                cfg = candidate;
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown config '%s'\n", argv[1]);
            return 1;
        }
    }

    std::printf("Per-loop performance limits, %s\n\n",
                cfg.name().c_str());

    AsciiTable table;
    table.setHeader({ "Loop", "Pseudo-DF", "Resource", "Actual",
                      "Serial", "CRAY-like", "% of limit" });

    for (const KernelSpec &spec : kernelSpecs()) {
        const DynTrace &trace =
            TraceLibrary::instance().trace(spec.id);
        const LimitResult pure = computeLimits(trace, cfg, false);
        const LimitResult serial = computeLimits(trace, cfg, true);

        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        const double achieved = cray.run(trace).issueRate();

        table.addRow({
            "LL" + std::to_string(spec.id),
            AsciiTable::num(pure.pseudoRate),
            AsciiTable::num(pure.resourceRate),
            AsciiTable::num(pure.actualRate),
            AsciiTable::num(serial.actualRate),
            AsciiTable::num(achieved),
            AsciiTable::num(achieved / pure.actualRate * 100, 0) + "%",
        });
    }
    table.print(std::cout);

    std::printf(
        "\nReading the table (paper section 4):\n"
        " - Pseudo-DF: critical path with branch gating, registers "
        "renamed.\n"
        " - Resource: busiest functional unit of the base machine.\n"
        " - Actual: the tighter of the two; what any issue scheme "
        "could hope for.\n"
        " - Serial: in-order completion per register (no WAW "
        "buffering):\n   the ceiling for every machine that blocks "
        "on WAW hazards.\n");
    return 0;
}
