/**
 * @file
 * Quickstart: write a tiny program with the assembler, execute it in
 * the functional interpreter to get a dynamic trace, and measure its
 * issue rate on the paper's machines.
 *
 * The program is DAXPY: y[i] = a*x[i] + y[i] over 64 elements.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "mfusim/mfusim.hh"

using namespace mfusim;

int
main()
{
    // ---- 1. write the program --------------------------------------
    constexpr int n = 64;
    constexpr std::int64_t x_base = 0;
    constexpr std::int64_t y_base = 100;
    constexpr double a = 2.5;

    Assembler as;
    as.aconst(A0, n);           // loop counter (A0 drives branches)
    as.aconst(A1, x_base);
    as.aconst(A2, y_base);
    as.sconstf(S5, a);

    const auto loop = as.here();
    as.loadS(S1, A1, 0);        // x[i]
    as.loadS(S2, A2, 0);        // y[i]
    as.fmul(S1, S5, S1);        // a*x[i]
    as.fadd(S1, S1, S2);        // a*x[i] + y[i]
    as.storeS(A2, 0, S1);
    as.aaddi(A1, A1, 1);
    as.aaddi(A2, A2, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    Program program = as.finish();

    std::printf("DAXPY, first instructions:\n%s...\n\n",
                Program{ { program.code.begin(),
                           program.code.begin() + 6 } }
                    .disassemble()
                    .c_str());

    // ---- 2. execute it for real to get a trace ---------------------
    Interpreter interp(program, 200);
    for (int i = 0; i < n; ++i) {
        interp.pokeMemF(std::uint64_t(x_base + i), double(i));
        interp.pokeMemF(std::uint64_t(y_base + i), 1.0);
    }
    const DynTrace trace = interp.run("daxpy");
    std::printf("executed %zu instructions; y[3] = %.2f (expect "
                "%.2f)\n\n",
                trace.size(), interp.peekMemF(y_base + 3),
                a * 3.0 + 1.0);

    // ---- 3. time it on the paper's machines ------------------------
    const MachineConfig cfg = configM11BR5();   // CRAY-1S-like

    SimpleSim simple(cfg);
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    MultiIssueSim multi({ 4, true, BusKind::kPerUnit, false }, cfg);
    RuuSim ruu({ 4, 50, BusKind::kPerUnit }, cfg);

    std::printf("issue rates on %s:\n", cfg.name().c_str());
    std::printf("  %-28s %.3f instr/cycle\n", simple.name().c_str(),
                simple.run(trace).issueRate());
    std::printf("  %-28s %.3f instr/cycle\n", cray.name().c_str(),
                cray.run(trace).issueRate());
    std::printf("  %-28s %.3f instr/cycle\n", multi.name().c_str(),
                multi.run(trace).issueRate());
    std::printf("  %-28s %.3f instr/cycle\n", ruu.name().c_str(),
                ruu.run(trace).issueRate());

    const LimitResult limit = computeLimits(trace, cfg);
    std::printf("  %-28s %.3f instr/cycle\n", "dataflow limit",
                limit.actualRate);
    return 0;
}
