/**
 * @file
 * Bottleneck hunting walkthrough: given a kernel, use mfusim's
 * analysis tools to explain *why* it runs at the rate it does and
 * what would fix it — the workflow an architect would follow.
 *
 *   $ ./examples/bottleneck_hunt [loop-id]     # default: LL5
 */

#include <cstdio>
#include <cstdlib>

#include "mfusim/mfusim.hh"

using namespace mfusim;

int
main(int argc, char **argv)
{
    const int loop_id = argc > 1 ? std::atoi(argv[1]) : 5;
    const MachineConfig cfg = configM11BR5();
    const DynTrace &trace = TraceLibrary::instance().trace(loop_id);

    std::printf("=== Step 1: what is this code made of? ===\n");
    std::fputs(analyzeTrace(trace, cfg).c_str(), stdout);

    std::printf("\n=== Step 2: what could any machine achieve? ===\n");
    const LimitResult pure = computeLimits(trace, cfg, false);
    const LimitResult serial = computeLimits(trace, cfg, true);
    std::printf("  dataflow limit      %.3f instr/cycle\n",
                pure.actualRate);
    std::printf("  without renaming    %.3f (serial WAW limit)\n",
                serial.actualRate);

    std::printf("\n=== Step 3: where do the cycles go today? ===\n");
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    const SimResult base = cray.run(trace);
    std::printf("  CRAY-like issue rate %.3f (%llu cycles)\n",
                base.issueRate(),
                (unsigned long long)base.cycles);
    const auto pct = [&base](std::uint64_t c) {
        return 100.0 * double(c) / double(base.cycles);
    };
    std::printf("  stalls: RAW %.0f%%  WAW %.0f%%  structural "
                "%.0f%%  bus %.0f%%  branch %.0f%%\n",
                pct(base.stalls.raw), pct(base.stalls.waw),
                pct(base.stalls.structural),
                pct(base.stalls.resultBus),
                pct(base.stalls.branch));

    std::printf("\n=== Step 4: try the fixes ===\n");
    struct Fix
    {
        const char *what;
        double rate;
    };
    RuuSim ruu({ 4, 64, BusKind::kPerUnit }, cfg);
    RuuSim ruu_spec({ 4, 64, BusKind::kPerUnit,
                      BranchPolicy::kOracle },
                    cfg);
    MachineConfig fast_mem = cfg;
    fast_mem.memLatency = 5;
    ScoreboardSim cray_fast(ScoreboardConfig::crayLike(), fast_mem);
    const Fix fixes[] = {
        { "faster memory (M5)",
          cray_fast.run(trace).issueRate() },
        { "dependency resolution (RUU 4x64)",
          ruu.run(trace).issueRate() },
        { "RUU + perfect branch prediction",
          ruu_spec.run(trace).issueRate() },
    };
    for (const Fix &fix : fixes) {
        std::printf("  %-34s %.3f (%.1fx)\n", fix.what, fix.rate,
                    fix.rate / base.issueRate());
    }
    std::printf("  %-34s %.3f\n", "ceiling (dataflow limit)",
                pure.actualRate);

    std::printf(
        "\nFor a recurrence loop (LL5/LL11) every fix saturates at "
        "the dataflow\nlimit -- the serial fp chain is the program, "
        "not the machine.  For a\nparallel loop (try './bottleneck_"
        "hunt 7') the RUU and speculation rows\nkeep climbing "
        "instead.\n");
    return 0;
}
