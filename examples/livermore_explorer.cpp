/**
 * @file
 * Livermore loop explorer: per-loop issue rates on every machine
 * organization, for one configuration chosen on the command line.
 *
 *   $ ./examples/livermore_explorer            # M11BR5
 *   $ ./examples/livermore_explorer M5BR2
 *   $ ./examples/livermore_explorer M11BR2 5   # loop 5 only
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "mfusim/mfusim.hh"

using namespace mfusim;

namespace
{

MachineConfig
parseConfig(const char *name)
{
    for (const MachineConfig &cfg : standardConfigs()) {
        if (cfg.name() == name)
            return cfg;
    }
    std::fprintf(stderr,
                 "unknown config '%s' (use M11BR5, M11BR2, M5BR5 or "
                 "M5BR2)\n",
                 name);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const MachineConfig cfg =
        argc > 1 ? parseConfig(argv[1]) : configM11BR5();
    const int only_loop = argc > 2 ? std::atoi(argv[2]) : 0;

    std::printf("Per-loop issue rates, %s\n\n", cfg.name().c_str());

    AsciiTable table;
    table.setHeader({ "Loop", "Class", "Ops", "Mem%", "Simple",
                      "CRAY-like", "OOO w=4", "RUU 4x50", "DF limit" });

    for (const KernelSpec &spec : kernelSpecs()) {
        if (only_loop != 0 && spec.id != only_loop)
            continue;
        const DynTrace &trace =
            TraceLibrary::instance().trace(spec.id);
        const TraceStats stats = trace.stats();

        SimpleSim simple(cfg);
        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, cfg);
        RuuSim ruu({ 4, 52, BusKind::kPerUnit }, cfg);

        table.addRow({
            "LL" + std::to_string(spec.id) + " " + spec.name,
            spec.vectorizable ? "vector" : "scalar",
            std::to_string(stats.totalOps),
            AsciiTable::num(stats.memoryFraction() * 100, 0),
            AsciiTable::num(simple.run(trace).issueRate()),
            AsciiTable::num(cray.run(trace).issueRate()),
            AsciiTable::num(ooo.run(trace).issueRate()),
            AsciiTable::num(ruu.run(trace).issueRate()),
            AsciiTable::num(computeLimits(trace, cfg).actualRate),
        });
    }
    table.print(std::cout);

    std::printf(
        "\nScalar loops: 5, 6, 11, 13, 14; vectorizable: the rest "
        "(paper's split).\n");
    return 0;
}
