/**
 * @file
 * Single-issue scoreboard machine golden-timing tests: RAW, WAW,
 * structural, result-bus and branch behaviour on the SerialMemory,
 * NonSegmented and CRAY-like organizations.
 */

#include <gtest/gtest.h>

#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

ClockCycle
cyclesOn(const ScoreboardConfig &org, const MachineConfig &cfg,
         const DynTrace &trace)
{
    ScoreboardSim sim(org, cfg);
    return sim.run(trace).cycles;
}

TEST(ScoreboardSim, IndependentOpsIssueBackToBack)
{
    // Two sconst (latency 1): issue at 0 and 1, done at 1 and 2.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              2u);
}

TEST(ScoreboardSim, RawHazardBlocksIssue)
{
    // Load S1 issues at 0, S1 ready at 11; the dependent fadd
    // issues at 11 and completes at 17.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S3, S1, S2),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              17u);
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM5BR5(),
                       trace),
              11u);
}

TEST(ScoreboardSim, WawHazardBlocksIssue)
{
    // Both write S1: the sconst waits for the load to release the
    // register reservation (cycle 11), completes at 12.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              12u);
}

TEST(ScoreboardSim, NonSegmentedUnitSerializes)
{
    // Two independent fadds on a non-segmented FP add unit: the
    // second must wait for the unit (issue 6, done 12).
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S4, S5),
        dyn(Op::kFAdd, S2, S6, S7),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::nonSegmented(),
                       configM11BR5(), trace),
              12u);
}

TEST(ScoreboardSim, SegmentedUnitOverlapsSameUnitOps)
{
    // CRAY-like: second fadd issues at 1... but the single result
    // bus is busy at cycle 7 (both would complete together at
    // 0+6=6 and 1+6=7 -- no clash), so both flow through.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S4, S5),
        dyn(Op::kFAdd, S2, S6, S7),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              7u);
}

TEST(ScoreboardSim, SerialMemoryBlocksSecondReference)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kLoadS, S2, A2),
    });
    // Serial: second load issues at 11, done 22.
    EXPECT_EQ(cyclesOn(ScoreboardConfig::serialMemory(),
                       configM11BR5(), trace),
              22u);
    // Interleaved: second load issues at 1, done 12.
    EXPECT_EQ(cyclesOn(ScoreboardConfig::nonSegmented(),
                       configM11BR5(), trace),
              12u);
}

TEST(ScoreboardSim, ResultBusConflictDelaysIssue)
{
    // fmul completes at 7.  An independent fadd issued at 1 would
    // also complete at 7 -- single result bus conflict -- so it
    // issues at 2 and completes at 8.
    const DynTrace trace = traceOf({
        dyn(Op::kFMul, S1, S4, S5),
        dyn(Op::kFAdd, S2, S6, S7),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              8u);

    ScoreboardConfig no_bus = ScoreboardConfig::crayLike();
    no_bus.modelResultBus = false;
    EXPECT_EQ(cyclesOn(no_bus, configM11BR5(), trace), 7u);
}

TEST(ScoreboardSim, BranchWaitsForConditionThenBlocks)
{
    // aconst A0 ready at 1; branch issues at 1, blocks issue until
    // 1+5; following aconst issues at 6, done 7.
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kAConst, A1),
    });
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              7u);
    // Fast branch: branch at 1, next at 3, done 4.
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR2(),
                       trace),
              4u);
}

TEST(ScoreboardSim, BranchOnLoadedConditionWaitsForMemory)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadA, A0, A1),
        dyn(Op::kBrAZ, kNoReg, A0, kNoReg, false),
    });
    // Load A0 ready at 11; branch issues 11, resolves 16.
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              16u);
}

TEST(ScoreboardSim, StoresReadDataAtIssue)
{
    // The store must wait for its data register (RAW via srcB).
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S2, S3),
        dyn(Op::kStoreS, kNoReg, A1, S1),
    });
    // fadd done 6; store issues 6, memory busy 11 more -> 17.
    EXPECT_EQ(cyclesOn(ScoreboardConfig::crayLike(), configM11BR5(),
                       trace),
              17u);
}

TEST(ScoreboardSim, MachineNames)
{
    const MachineConfig cfg = configM11BR5();
    EXPECT_EQ(ScoreboardSim(ScoreboardConfig::serialMemory(),
                            cfg).name(),
              "SerialMemory");
    EXPECT_EQ(ScoreboardSim(ScoreboardConfig::nonSegmented(),
                            cfg).name(),
              "NonSegmented");
    EXPECT_EQ(ScoreboardSim(ScoreboardConfig::crayLike(), cfg).name(),
              "CRAY-like");
}

TEST(ScoreboardSim, IssueRateAtMostOne)
{
    // Even a trace of pure 1-cycle transfers cannot exceed 1/cycle.
    DynTrace trace("ones");
    for (int i = 0; i < 100; ++i)
        trace.append(dyn(Op::kSConst, regS(unsigned(i) % 8)));
    ScoreboardSim sim(ScoreboardConfig::crayLike(), configM5BR2());
    EXPECT_LE(sim.run(trace).issueRate(), 1.0);
}

} // namespace
} // namespace mfusim
