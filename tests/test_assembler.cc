/**
 * @file
 * Macro-assembler tests: emission, labels, fixups, the divide idiom,
 * and disassembly round trips.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mfusim/codegen/assembler.hh"

namespace mfusim
{
namespace
{

TEST(Assembler, EmitsInOrder)
{
    Assembler as;
    as.aconst(A1, 5);
    as.aaddi(A1, A1, -1);
    as.halt();
    Program p = as.finish();
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].op, Op::kAConst);
    EXPECT_EQ(p[0].dst, A1);
    EXPECT_EQ(p[0].imm, 5);
    EXPECT_EQ(p[1].op, Op::kAAddI);
    EXPECT_EQ(p[1].srcA, A1);
    EXPECT_EQ(p[1].srcB, kNoReg);
    EXPECT_EQ(p[1].imm, -1);
    EXPECT_EQ(p[2].op, Op::kHalt);
}

TEST(Assembler, BackwardBranchTarget)
{
    Assembler as;
    as.aconst(A0, 3);
    const auto loop = as.here();            // index 1
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    Program p = as.finish();
    ASSERT_EQ(p.size(), 4u);
    EXPECT_EQ(p[2].op, Op::kBrANZ);
    EXPECT_EQ(p[2].target(), 1u);
    EXPECT_EQ(p[2].srcA, A0);
}

TEST(Assembler, ForwardBranchTarget)
{
    Assembler as;
    const auto skip = as.newLabel();
    as.aconst(A0, 0);
    as.braz(skip);
    as.aconst(A1, 99);          // skipped when A0 == 0
    as.bind(skip);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[1].target(), 3u);
}

TEST(Assembler, UnboundLabelThrows)
{
    Assembler as;
    const auto nowhere = as.newLabel();
    as.jump(nowhere);
    as.halt();
    EXPECT_THROW(as.finish(), std::logic_error);
}

TEST(Assembler, SBranchesConditionOnS0)
{
    Assembler as;
    const auto l = as.here();
    as.brsnz(l);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].op, Op::kBrSNZ);
    EXPECT_EQ(p[0].srcA, S0);
}

TEST(Assembler, ABranchesConditionOnA0)
{
    Assembler as;
    const auto l = as.here();
    as.bram(l);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].srcA, A0);
}

TEST(Assembler, JumpHasNoConditionRegister)
{
    Assembler as;
    const auto l = as.here();
    as.jump(l);
    Program p = as.finish();
    EXPECT_EQ(p[0].srcA, kNoReg);
}

TEST(Assembler, MemoryOperandEncoding)
{
    Assembler as;
    as.loadS(S1, A2, 7);
    as.storeS(A3, -4, S5);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].op, Op::kLoadS);
    EXPECT_EQ(p[0].dst, S1);
    EXPECT_EQ(p[0].srcA, A2);
    EXPECT_EQ(p[0].imm, 7);
    EXPECT_EQ(p[1].op, Op::kStoreS);
    EXPECT_EQ(p[1].dst, kNoReg);
    EXPECT_EQ(p[1].srcA, A3);
    EXPECT_EQ(p[1].srcB, S5);
    EXPECT_EQ(p[1].imm, -4);
}

TEST(Assembler, FdivExpandsToCrayReciprocalSequence)
{
    Assembler as;
    as.fdiv(S1, S2, S3, S4, S5);
    as.halt();
    Program p = as.finish();
    // frecip, fmul, sconst(2.0), fsub, fmul, fmul.
    ASSERT_EQ(p.size(), 7u);
    EXPECT_EQ(p[0].op, Op::kFRecip);
    EXPECT_EQ(p[1].op, Op::kFMul);
    EXPECT_EQ(p[2].op, Op::kSConst);
    EXPECT_EQ(p[3].op, Op::kFSub);
    EXPECT_EQ(p[4].op, Op::kFMul);
    EXPECT_EQ(p[5].op, Op::kFMul);
    EXPECT_EQ(p[5].dst, S1);
    EXPECT_EQ(p[5].srcA, S2);
}

TEST(Assembler, PositionTracksEmission)
{
    Assembler as;
    EXPECT_EQ(as.position(), 0u);
    as.aconst(A1, 1);
    EXPECT_EQ(as.position(), 1u);
    as.fadd(S1, S2, S3);
    EXPECT_EQ(as.position(), 2u);
}

TEST(Assembler, HereBindsAtCurrentPosition)
{
    Assembler as;
    as.aconst(A1, 1);
    const auto l = as.here();
    as.jump(l);
    Program p = as.finish();
    EXPECT_EQ(p[1].target(), 1u);
}

TEST(Assembler, DisassemblyMentionsOperands)
{
    Assembler as;
    as.fadd(S1, S2, S3);
    as.loadS(S4, A1, 10);
    as.halt();
    Program p = as.finish();
    const std::string listing = p.disassemble();
    EXPECT_NE(listing.find("fadd S1, S2, S3"), std::string::npos);
    EXPECT_NE(listing.find("loads S4, 10(A1)"), std::string::npos);
}

TEST(Assembler, ShiftEncodesCount)
{
    Assembler as;
    as.sshl(S1, S2, 5);
    as.sshr(S3, S4, 63);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].imm, 5);
    EXPECT_EQ(p[1].imm, 63);
}

TEST(Assembler, SconstfStoresBitPattern)
{
    Assembler as;
    as.sconstf(S1, 1.5);
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].imm, std::int64_t(0x3FF8000000000000ull));
}

TEST(Assembler, SaveRegisterTransfers)
{
    Assembler as;
    as.tmovs(regT(5), S1);
    as.smovt(S2, regT(5));
    as.bmova(regB(9), A3);
    as.amovb(A4, regB(9));
    as.halt();
    Program p = as.finish();
    EXPECT_EQ(p[0].dst, regT(5));
    EXPECT_EQ(p[1].srcA, regT(5));
    EXPECT_EQ(p[2].dst, regB(9));
    EXPECT_EQ(p[3].srcA, regB(9));
}

} // namespace
} // namespace mfusim
