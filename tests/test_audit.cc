/**
 * @file
 * SimAudit coverage.
 *
 *  - Every simulator's schedule passes its own organization's
 *    legality audit on every library loop and machine config, with
 *    bit-identical results to the unaudited run (the audit hook must
 *    not perturb timing).
 *  - Hand-fed Auditors reject crafted violations of each check
 *    family with an AuditError naming the check.
 *  - The livelock watchdog converts a stalled simulation into a
 *    diagnostic SimError naming the waiting op.
 *  - The audit-everything flag routes parallel sweeps through
 *    runAudited() without changing rates.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mfusim/codegen/interpreter.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/simulator.hh"
#include "mfusim/sim/tomasulo_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

/** One instance of each organization at representative settings. */
std::vector<std::unique_ptr<Simulator>>
allSims(const MachineConfig &cfg)
{
    std::vector<std::unique_ptr<Simulator>> sims;
    sims.push_back(std::make_unique<SimpleSim>(cfg));
    sims.push_back(std::make_unique<ScoreboardSim>(
        ScoreboardConfig::crayLike(), cfg));
    sims.push_back(
        std::make_unique<Cdc6600Sim>(Cdc6600Config{}, cfg));
    sims.push_back(std::make_unique<TomasuloSim>(
        TomasuloConfig{ 3, 1, BranchPolicy::kBlocking }, cfg));
    sims.push_back(std::make_unique<MultiIssueSim>(
        MultiIssueConfig{ 4, true, BusKind::kPerUnit, false }, cfg));
    sims.push_back(std::make_unique<RuuSim>(
        RuuConfig{ 2, 20, BusKind::kPerUnit }, cfg));
    return sims;
}

// ---- full-coverage audit: all sims x all loops x all configs ----------

class AuditAllLoops
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(AuditAllLoops, ZeroViolationsAndBitIdenticalResults)
{
    const int loop = std::get<0>(GetParam());
    const MachineConfig cfg =
        standardConfigs()[std::size_t(std::get<1>(GetParam()))];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(loop, cfg);

    auto plain = allSims(cfg);
    auto audited = allSims(cfg);
    for (std::size_t s = 0; s < plain.size(); ++s) {
        const SimResult base = plain[s]->run(trace);
        SimResult checked;
        ASSERT_NO_THROW(checked = runAudited(*audited[s], trace))
            << plain[s]->name();
        EXPECT_EQ(checked.cycles, base.cycles) << plain[s]->name();
        EXPECT_EQ(checked.instructions, base.instructions)
            << plain[s]->name();
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLoopsAllConfigs, AuditAllLoops,
    ::testing::Combine(::testing::Range(1, 15),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) + "_" +
            standardConfigs()[std::size_t(std::get<1>(info.param))]
                .name();
    });

TEST(Audit, VectorizedKernelPassesOnScoreboard)
{
    // Vector chaining availability (producer's first element) is the
    // subtlest availability rule; the audited vector schedule must
    // still be violation-free and bit-identical.
    const Kernel kernel = buildVectorizedKernel(7);
    KernelRun run = runKernel(kernel, "LL7v");
    ASSERT_EQ(run.mismatches, 0u);
    for (const MachineConfig &cfg : standardConfigs()) {
        const DecodedTrace decoded(run.trace, cfg);
        ScoreboardSim plain(ScoreboardConfig::crayLike(), cfg);
        ScoreboardSim checked(ScoreboardConfig::crayLike(), cfg);
        const SimResult base = plain.run(decoded);
        SimResult audited;
        ASSERT_NO_THROW(audited = runAudited(checked, decoded))
            << cfg.name();
        EXPECT_EQ(audited.cycles, base.cycles) << cfg.name();
    }
}

TEST(Audit, SweepAuditPathMatchesPlainRates)
{
    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<ScoreboardSim>(
            ScoreboardConfig::crayLike(), c);
    };
    const std::vector<int> loops{ 1, 2, 3 };
    const MachineConfig cfg = configM11BR5();
    const std::vector<double> plain =
        parallelPerLoopRates(factory, loops, cfg, 2);
    setAuditRequested(true);
    std::vector<double> audited;
    try {
        audited = parallelPerLoopRates(factory, loops, cfg, 2);
    } catch (...) {
        setAuditRequested(false);
        throw;
    }
    setAuditRequested(false);
    EXPECT_EQ(audited, plain);
}

// ---- crafted violations: each check family must fire ------------------

void
feed(Auditor &auditor, AuditPhase phase, ClockCycle cycle,
     std::uint64_t op, std::int32_t unit = -1)
{
    auditor.onEvent(AuditEvent{ cycle, op, unit, phase });
}

/** finish() must throw an AuditError for @p check. */
void
expectViolation(Auditor &auditor, const std::string &check)
{
    try {
        auditor.finish();
        FAIL() << "no violation raised, expected " << check;
    } catch (const AuditError &e) {
        EXPECT_EQ(e.check(), check) << e.what();
    }
}

TEST(AuditChecks, RawHazardIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, regS(1), regA(1)),
        dyn(Op::kFAdd, regS(2), regS(1), regS(1)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.rawAt = AuditRules::RawAt::kIssue;
    Auditor auditor(decoded, rules);
    feed(auditor, AuditPhase::kIssue, 0, 0);
    feed(auditor, AuditPhase::kComplete, 11, 0);
    // The add reads S1 eight cycles before the load produces it.
    feed(auditor, AuditPhase::kIssue, 3, 1);
    feed(auditor, AuditPhase::kComplete, 9, 1);
    expectViolation(auditor, "raw-hazard");
}

TEST(AuditChecks, InOrderIssueIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
        dyn(Op::kFMul, regS(4), regS(5), regS(6)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.inOrderFront = true;
    rules.strictSingleFront = true;
    Auditor auditor(decoded, rules);
    // Two issues in the same cycle on a single-issue machine.
    feed(auditor, AuditPhase::kIssue, 5, 0);
    feed(auditor, AuditPhase::kComplete, 11, 0);
    feed(auditor, AuditPhase::kIssue, 5, 1);
    feed(auditor, AuditPhase::kComplete, 12, 1);
    expectViolation(auditor, "in-order-issue");
}

TEST(AuditChecks, ResultBusConflictIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
        dyn(Op::kFMul, regS(4), regS(5), regS(6)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.busCount = 1;
    rules.busKind = BusKind::kSingle;
    Auditor auditor(decoded, rules);
    // Two results on the single bus in the same cycle.
    feed(auditor, AuditPhase::kIssue, 0, 0);
    feed(auditor, AuditPhase::kComplete, 7, 0, 0);
    feed(auditor, AuditPhase::kIssue, 1, 1);
    feed(auditor, AuditPhase::kComplete, 7, 1, 0);
    expectViolation(auditor, "result-bus-conflict");
}

TEST(AuditChecks, FuOccupancyIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, regS(1), regA(1)),
        dyn(Op::kLoadS, regS(2), regA(2)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.checkFuCaps = true;
    rules.memPorts = 1;
    Auditor auditor(decoded, rules);
    // Two loads through one interleaved memory port in one cycle.
    feed(auditor, AuditPhase::kIssue, 2, 0);
    feed(auditor, AuditPhase::kComplete, 13, 0);
    feed(auditor, AuditPhase::kIssue, 2, 1);
    feed(auditor, AuditPhase::kComplete, 13, 1);
    expectViolation(auditor, "fu-occupancy");
}

TEST(AuditChecks, RuuCapacityIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
        dyn(Op::kFMul, regS(4), regS(5), regS(6)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.frontPhase = AuditPhase::kInsert;
    rules.windowCapacity = 1;
    Auditor auditor(decoded, rules);
    // Overlapping [insert, commit) residency in a 1-entry window.
    feed(auditor, AuditPhase::kInsert, 0, 0);
    feed(auditor, AuditPhase::kComplete, 7, 0);
    feed(auditor, AuditPhase::kCommit, 10, 0);
    feed(auditor, AuditPhase::kInsert, 5, 1);
    feed(auditor, AuditPhase::kComplete, 7, 1);
    feed(auditor, AuditPhase::kCommit, 8, 1);
    expectViolation(auditor, "ruu-capacity");
}

TEST(AuditChecks, BranchFloorIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kBrANZ, kNoReg, regA(0), kNoReg, true),
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    AuditRules rules;
    rules.checkBranchFloor = true;
    Auditor auditor(decoded, rules);
    // The add issues 2 cycles after a BR5 blocking branch.
    feed(auditor, AuditPhase::kIssue, 0, 0);
    feed(auditor, AuditPhase::kIssue, 2, 1);
    feed(auditor, AuditPhase::kComplete, 9, 1);
    expectViolation(auditor, "branch-floor");
}

TEST(AuditChecks, MissingCompletionIsCaught)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    Auditor auditor(decoded, AuditRules{});
    feed(auditor, AuditPhase::kIssue, 0, 0);
    expectViolation(auditor, "missing-event");
}

TEST(AuditChecks, DuplicateEventThrowsImmediately)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, regS(1), regS(2), regS(3)),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    Auditor auditor(decoded, AuditRules{});
    feed(auditor, AuditPhase::kIssue, 0, 0);
    EXPECT_THROW(feed(auditor, AuditPhase::kIssue, 1, 0), AuditError);
}

// ---- livelock watchdog -------------------------------------------------

TEST(Watchdog, MultiIssueDiagnosesStalledIssue)
{
    // A load feeding a dependent add stalls issue for the memory
    // latency; a 4-cycle threshold must trip with a diagnostic
    // naming the waiting op.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, regS(1), regA(1)),
        dyn(Op::kFAdd, regS(2), regS(1), regS(1)),
    });
    MultiIssueSim sim(
        MultiIssueConfig{ 2, false, BusKind::kPerUnit, false,
                          BranchPolicy::kBlocking, 1, 1, 4 },
        configM11BR5());
    try {
        sim.run(trace);
        FAIL() << "watchdog did not fire";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("MultiIssueSim"), std::string::npos)
            << what;
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
        EXPECT_NE(what.find("op #1"), std::string::npos) << what;
    }
}

TEST(Watchdog, RuuDiagnosesStalledWindow)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, regS(1), regA(1)),
        dyn(Op::kFAdd, regS(2), regS(1), regS(1)),
    });
    RuuSim sim(RuuConfig{ 1, 10, BusKind::kPerUnit,
                          BranchPolicy::kBlocking, 1, 1, 4 },
               configM11BR5());
    try {
        sim.run(trace);
        FAIL() << "watchdog did not fire";
    } catch (const SimError &e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("RuuSim"), std::string::npos) << what;
        EXPECT_NE(what.find("watchdog"), std::string::npos) << what;
    }
}

TEST(Watchdog, DefaultThresholdToleratesLegalStalls)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, regS(1), regA(1)),
        dyn(Op::kFAdd, regS(2), regS(1), regS(1)),
    });
    MultiIssueSim multi(
        MultiIssueConfig{ 2, false, BusKind::kPerUnit, false },
        configM11BR5());
    RuuSim ruu(RuuConfig{ 1, 10, BusKind::kPerUnit }, configM11BR5());
    EXPECT_NO_THROW(multi.run(trace));
    EXPECT_NO_THROW(ruu.run(trace));
}

// ---- error taxonomy ----------------------------------------------------

TEST(Errors, ExitCodesAreDistinct)
{
    EXPECT_EQ(Error("x").exitCode(), 1);
    EXPECT_EQ(ConfigError("x").exitCode(), 3);
    EXPECT_EQ(TraceError("x").exitCode(), 4);
    EXPECT_EQ(SimError("x").exitCode(), 5);
    EXPECT_EQ(AuditError("c", 0, 0, "d").exitCode(), 6);
    EXPECT_EQ(SweepError({}, 0).exitCode(), 7);
}

TEST(Errors, ConfigValidationRejectsGarbage)
{
    EXPECT_THROW((MachineConfig{ 0, 5, {} }.validate()), ConfigError);
    EXPECT_THROW((MachineConfig{ 11, 0, {} }.validate()), ConfigError);
    EXPECT_THROW((MachineConfig{ 1u << 20, 5, {} }.validate()),
                 ConfigError);
    EXPECT_NO_THROW(configM11BR5().validate());
    EXPECT_THROW(RuuSim(RuuConfig{ 4, 2, BusKind::kPerUnit },
                        configM11BR5()),
                 ConfigError);
    EXPECT_THROW(MultiIssueSim(
                     MultiIssueConfig{ 0, false, BusKind::kPerUnit,
                                       false },
                     configM11BR5()),
                 ConfigError);
}

} // namespace
} // namespace mfusim
