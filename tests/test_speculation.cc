/**
 * @file
 * Speculative-execution subsystem coverage (spec/predictor.hh plus
 * the speculative MultiIssue/RUU front ends):
 *
 *  - PredictorSpec parsing, keys, validation, and the shared
 *    prediction replay (2-bit FSM, fixed-accuracy determinism);
 *  - pred=perfect reproduces the legacy oracle branch policy
 *    bit-identically on every Livermore loop, on both machines;
 *  - audited speculative runs (squash-legality invariants) on every
 *    loop, plus crafted traces for the classic squash shapes: loop
 *    back-edge mispredict, nested mispredicts, squash while the
 *    condition's functional unit is still busy;
 *  - the steady-state fast path stays off under non-perfect
 *    predictors (and on, oracle-identical, under the perfect one);
 *  - speculative lanes fall back to the scalar path inside runBatch
 *    with bit-identical results;
 *  - cache keys, config names, machine-spec ",pred=" plumbing, and
 *    the non-speculative machines' rejection of an armed predictor.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/error.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/spec_parse.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/steady_state.hh"
#include "mfusim/sim/tomasulo_sim.hh"
#include "mfusim/spec/predictor.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

class SteadyGuard
{
  public:
    explicit SteadyGuard(bool on) : prev_(steadyStateEnabled())
    {
        setSteadyStateEnabled(on);
    }
    ~SteadyGuard() { setSteadyStateEnabled(prev_); }

  private:
    bool prev_;
};

DynOp
branch(bool taken, bool backward)
{
    DynOp op = dyn(Op::kBrANZ, kNoReg, A0, kNoReg, taken);
    op.backward = backward;
    return op;
}

MachineConfig
withPredictor(const MachineConfig &base, const std::string &spec)
{
    MachineConfig cfg = base;
    cfg.predictor = PredictorSpec::parse(spec);
    return cfg;
}

void
expectSameResult(const SimResult &got, const SimResult &want,
                 const std::string &what)
{
    EXPECT_EQ(got.instructions, want.instructions) << what;
    EXPECT_EQ(got.cycles, want.cycles) << what;
    EXPECT_EQ(got.steadyOpsSkipped, want.steadyOpsSkipped) << what;
    EXPECT_EQ(got.squashes, want.squashes) << what;
    EXPECT_EQ(got.wrongPathOps, want.wrongPathOps) << what;
    EXPECT_EQ(got.hasStalls, want.hasStalls) << what;
}

// ---- PredictorSpec parsing / keys ------------------------------------

TEST(PredictorSpec, ParseAndKeyRoundTrip)
{
    for (const char *text :
         { "perfect:w8", "taken:w8", "btfn:w4", "2bit:512:w8",
           "2bit:64:w16", "fixed:90:s1:w8", "fixed:0:s7:w2" }) {
        const PredictorSpec spec = PredictorSpec::parse(text);
        EXPECT_EQ(spec.key(), text);
        EXPECT_TRUE(PredictorSpec::parse(spec.key()) == spec) << text;
    }
    // Defaults fill in: table 512, seed 1, window 8.
    EXPECT_EQ(PredictorSpec::parse("2bit").key(), "2bit:512:w8");
    EXPECT_EQ(PredictorSpec::parse("fixed:95").key(),
              "fixed:95:s1:w8");
    EXPECT_EQ(PredictorSpec::parse("perfect").key(), "perfect:w8");
    EXPECT_EQ(PredictorSpec{}.key(), "");
    EXPECT_FALSE(PredictorSpec{}.armed());
}

TEST(PredictorSpec, ParseRejectsMalformedSpecs)
{
    for (const char *text :
         { "", "bogus", "2bit:500", "2bit:0", "fixed",
           "fixed:101", "fixed:90:x3", "perfect:w0",
           "taken:w5000", "2bit:512:junk" }) {
        EXPECT_THROW(PredictorSpec::parse(text), ConfigError) << text;
    }
}

// ---- prediction replay ----------------------------------------------

TEST(PredictorReplay, StaticKindsFollowTheBranchStream)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(/*taken=*/true, /*backward=*/true),   // btfn right
        branch(/*taken=*/false, /*backward=*/true),  // btfn wrong
        branch(/*taken=*/true, /*backward=*/false),  // btfn wrong
        dyn(Op::kSConst, S2),
    });
    const DecodedTrace decoded(trace, configM11BR5());

    const auto perfect =
        precomputePredictions(decoded, PredictorSpec::parse("perfect"));
    EXPECT_EQ(perfect, (std::vector<std::uint8_t>{ 1, 1, 1, 1, 1 }));

    const auto taken =
        precomputePredictions(decoded, PredictorSpec::parse("taken"));
    EXPECT_EQ(taken, (std::vector<std::uint8_t>{ 1, 1, 0, 1, 1 }));

    const auto btfn =
        precomputePredictions(decoded, PredictorSpec::parse("btfn"));
    EXPECT_EQ(btfn, (std::vector<std::uint8_t>{ 1, 1, 0, 0, 1 }));
}

TEST(PredictorReplay, TwoBitCountersSaturateAndRecover)
{
    // One static branch (all dyn() ops share staticIdx 0), direction
    // pattern T T N T.  Counters start weakly taken (2): predict T
    // (right, ->3), T (right, stays 3), N (wrong, ->2), T (right).
    const DynTrace trace = traceOf({
        branch(true, true),
        branch(true, true),
        branch(false, true),
        branch(true, true),
    });
    const DecodedTrace decoded(trace, configM11BR5());
    const auto ok =
        precomputePredictions(decoded, PredictorSpec::parse("2bit"));
    EXPECT_EQ(ok, (std::vector<std::uint8_t>{ 1, 1, 0, 1 }));
}

TEST(PredictorReplay, FixedAccuracyIsSeededAndDeterministic)
{
    const DecodedTrace &decoded = TraceLibrary::instance().decoded(
        3, standardConfigs()[0]);

    // The degenerate accuracies are exact: 100 never mispredicts,
    // 0 mispredicts every branch (and only branches).
    const auto all =
        precomputePredictions(decoded, PredictorSpec::parse("fixed:100"));
    const auto none =
        precomputePredictions(decoded, PredictorSpec::parse("fixed:0"));
    std::size_t branches = 0;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        EXPECT_EQ(all[i], 1u);
        EXPECT_EQ(none[i], decoded.isBranch(i) ? 0u : 1u);
        branches += decoded.isBranch(i) ? 1 : 0;
    }
    ASSERT_GT(branches, 10u);

    // Same seed -> same stream; the hit count tracks the target.
    const PredictorSpec ninety = PredictorSpec::parse("fixed:90:s1");
    const auto a = precomputePredictions(decoded, ninety);
    const auto b = precomputePredictions(decoded, ninety);
    EXPECT_EQ(a, b);
    std::size_t wrong = 0;
    for (std::size_t i = 0; i < decoded.size(); ++i)
        wrong += a[i] ? 0 : 1;
    EXPECT_GT(wrong, 0u);
    EXPECT_LT(double(wrong), 0.35 * double(branches));
}

// ---- perfect prediction == legacy oracle, every loop, both sims ------

class SpecLoop : public ::testing::TestWithParam<int>
{
};

TEST_P(SpecLoop, PerfectPredictorMatchesOracleBitIdentically)
{
    const MachineConfig base = configM11BR5();
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(GetParam(), base);
    const MachineConfig perfect = withPredictor(base, "perfect");

    {
        MultiIssueSim oracle(
            { 4, true, BusKind::kPerUnit, false, BranchPolicy::kOracle },
            base);
        MultiIssueSim spec({ 4, true, BusKind::kPerUnit, false },
                           perfect);
        expectSameResult(spec.run(trace), oracle.run(trace),
                         "ooo w=4 perfect vs oracle");
    }
    {
        MultiIssueSim oracle(
            { 4, false, BusKind::kPerUnit, false, BranchPolicy::kOracle },
            base);
        MultiIssueSim spec({ 4, false, BusKind::kPerUnit, false },
                           perfect);
        expectSameResult(spec.run(trace), oracle.run(trace),
                         "seq w=4 perfect vs oracle");
    }
    {
        RuuSim oracle(
            { 4, 50, BusKind::kPerUnit, BranchPolicy::kOracle }, base);
        RuuSim spec({ 4, 50, BusKind::kPerUnit }, perfect);
        expectSameResult(spec.run(trace), oracle.run(trace),
                         "ruu w=4/50 perfect vs oracle");
    }
}

TEST_P(SpecLoop, AuditedTwoBitRunsPassSquashLegality)
{
    const MachineConfig base = configM11BR5();
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(GetParam(), base);
    const MachineConfig pred = withPredictor(base, "2bit");

    MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
    const SimResult a = runAudited(ooo, trace);
    EXPECT_GT(a.issueRate(), 0.0);

    RuuSim ruu({ 4, 50, BusKind::kPerUnit }, pred);
    const SimResult b = runAudited(ruu, trace);
    EXPECT_GT(b.issueRate(), 0.0);

    // The audited (complete-event) path and the plain path agree.
    MultiIssueSim fresh({ 4, true, BusKind::kPerUnit, false }, pred);
    SteadyGuard off(false);
    const SimResult plain = fresh.run(trace);
    EXPECT_EQ(a.cycles, plain.cycles);
    EXPECT_EQ(a.squashes, plain.squashes);
    EXPECT_EQ(a.wrongPathOps, plain.wrongPathOps);
}

INSTANTIATE_TEST_SUITE_P(AllLoops, SpecLoop, ::testing::Range(1, 15));

TEST(Speculation, TwoBitMispredictsSomewhereAcrossTheSuite)
{
    // Loop-closing branches are easy, but every loop's final
    // not-taken branch (at least) breaks a saturated counter, so the
    // suite as a whole must squash.
    const MachineConfig pred = withPredictor(configM11BR5(), "2bit");
    std::uint64_t squashes = 0;
    for (int loop = 1; loop <= 14; ++loop) {
        RuuSim sim({ 4, 50, BusKind::kPerUnit }, pred);
        squashes += sim.run(TraceLibrary::instance().decoded(
                                loop, configM11BR5()))
                        .squashes;
    }
    EXPECT_GT(squashes, 0u);
}

// ---- crafted squash shapes -------------------------------------------

TEST(Speculation, LoopBackEdgeMispredictSquashesOnce)
{
    // Three taken back edges (BTFN right) then the loop exit (BTFN
    // wrong): exactly one squash, on both machines, under audit.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(true, true),
        dyn(Op::kSConst, S2),
        branch(true, true),
        dyn(Op::kSConst, S3),
        branch(true, true),
        dyn(Op::kSConst, S1),
        branch(/*taken=*/false, /*backward=*/true),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    const MachineConfig pred = withPredictor(configM11BR5(), "btfn");
    const DecodedTrace decoded(trace, pred);

    MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
    const SimResult a = runAudited(ooo, decoded);
    EXPECT_EQ(a.squashes, 1u);

    RuuSim ruu({ 4, 10, BusKind::kPerUnit }, pred);
    const SimResult b = runAudited(ruu, decoded);
    EXPECT_EQ(b.squashes, 1u);
}

TEST(Speculation, NestedMispredictsSquashSeparately)
{
    // fixed:0 mispredicts every branch: two branches -> two precise
    // squashes, each confirmed legal by the auditor.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(true, true),
        dyn(Op::kSConst, S2),
        branch(false, false),
        dyn(Op::kSConst, S3),
        dyn(Op::kSConst, S1),
    });
    const MachineConfig pred = withPredictor(configM11BR5(), "fixed:0");
    const DecodedTrace decoded(trace, pred);

    MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
    EXPECT_EQ(runAudited(ooo, decoded).squashes, 2u);

    RuuSim ruu({ 4, 10, BusKind::kPerUnit }, pred);
    EXPECT_EQ(runAudited(ruu, decoded).squashes, 2u);
}

TEST(Speculation, WrongPathFetchesWhileConditionUnitIsBusy)
{
    // The branch condition comes from a load (long latency), so the
    // mispredicted branch stays unresolved for many cycles while the
    // front end pushes wrong-path work into real resources; the
    // squash must still be precise and the run no faster than the
    // blocking machine.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadA, A0, A1),
        branch(/*taken=*/false, /*backward=*/true), // "taken" wrong
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
        dyn(Op::kSConst, S1),
    });
    const MachineConfig base = configM11BR5();
    const MachineConfig pred = withPredictor(base, "taken");
    const DecodedTrace specDecoded(trace, pred);
    const DecodedTrace baseDecoded(trace, base);

    MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
    const SimResult a = runAudited(ooo, specDecoded);
    EXPECT_EQ(a.squashes, 1u);
    EXPECT_GT(a.wrongPathOps, 0u);

    RuuSim ruu({ 4, 10, BusKind::kPerUnit }, pred);
    const SimResult b = runAudited(ruu, specDecoded);
    EXPECT_EQ(b.squashes, 1u);
    EXPECT_GT(b.wrongPathOps, 0u);

    // A mispredict can never beat the blocking front end: same
    // redirect floor plus wrong-path pollution.
    MultiIssueSim blockingOoo({ 4, true, BusKind::kPerUnit, false },
                              base);
    EXPECT_GE(a.cycles, blockingOoo.run(baseDecoded).cycles);
    RuuSim blockingRuu({ 4, 10, BusKind::kPerUnit }, base);
    EXPECT_GE(b.cycles, blockingRuu.run(baseDecoded).cycles);
}

TEST(Speculation, WrongPathRespectsTheConfiguredWindow)
{
    // A one-op wrong-path window bounds the pollution per squash.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadA, A0, A1),
        branch(false, true),
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    const MachineConfig pred =
        withPredictor(configM11BR5(), "taken:w1");
    const DecodedTrace decoded(trace, pred);
    MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
    const SimResult a = runAudited(ooo, decoded);
    EXPECT_EQ(a.squashes, 1u);
    EXPECT_LE(a.wrongPathOps, 1u);

    RuuSim ruu({ 4, 10, BusKind::kPerUnit }, pred);
    const SimResult b = runAudited(ruu, decoded);
    EXPECT_LE(b.wrongPathOps, 1u);
}

TEST(Speculation, PerfectPredictorNeverSquashes)
{
    const MachineConfig pred =
        withPredictor(configM11BR5(), "perfect");
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(5, configM11BR5());
    RuuSim ruu({ 4, 50, BusKind::kPerUnit }, pred);
    const SimResult r = ruu.run(trace);
    EXPECT_EQ(r.squashes, 0u);
    EXPECT_EQ(r.wrongPathOps, 0u);
}

// ---- steady-state interaction ----------------------------------------

TEST(Speculation, NonPerfectPredictorDisablesSteadyState)
{
    const MachineConfig pred = withPredictor(configM11BR5(), "2bit");
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(5, configM11BR5());

    SimResult on, off;
    {
        SteadyGuard steady(true);
        MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
        on = ooo.run(trace);
        RuuSim ruu({ 4, 50, BusKind::kPerUnit }, pred);
        EXPECT_EQ(ruu.run(trace).steadyOpsSkipped, 0u);
    }
    EXPECT_EQ(on.steadyOpsSkipped, 0u);
    {
        SteadyGuard steady(false);
        MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, pred);
        off = ooo.run(trace);
    }
    expectSameResult(on, off, "steady on/off under 2bit");
}

TEST(Speculation, PerfectPredictorKeepsSteadyState)
{
    // The perfect predictor keeps the oracle-identical schedule, so
    // the fast path stays armed and skips whatever the oracle skips.
    SteadyGuard steady(true);
    const MachineConfig base = configM11BR5();
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(5, base);
    MultiIssueSim oracle(
        { 4, true, BusKind::kPerUnit, false, BranchPolicy::kOracle },
        base);
    MultiIssueSim spec({ 4, true, BusKind::kPerUnit, false },
                       withPredictor(base, "perfect"));
    const SimResult want = oracle.run(trace);
    const SimResult got = spec.run(trace);
    EXPECT_EQ(got.steadyOpsSkipped, want.steadyOpsSkipped);
    EXPECT_EQ(got.cycles, want.cycles);
}

// ---- monotone issue rate vs predictor accuracy -----------------------

TEST(Speculation, IssueRateClimbsWithPredictorAccuracy)
{
    const auto rate = [](const std::string &spec) {
        return meanIssueRate(
            [&spec](const MachineConfig &c)
                -> std::unique_ptr<Simulator> {
                return std::make_unique<RuuSim>(
                    RuuConfig{ 4, 50, BusKind::kPerUnit },
                    withPredictor(c, spec));
            },
            LoopClass::kScalar, configM11BR5());
    };
    const double r60 = rate("fixed:60");
    const double r80 = rate("fixed:80");
    const double r95 = rate("fixed:95");
    const double perfect = rate("perfect");
    // Graham list-scheduling anomalies allow small local dips; the
    // trend must be monotone within a 2% band and strict end to end.
    EXPECT_GE(r80, r60 * 0.98);
    EXPECT_GE(r95, r80 * 0.98);
    EXPECT_GE(perfect, r95 * 0.98);
    EXPECT_GT(perfect, r60);
}

// ---- batched sweep fallback ------------------------------------------

TEST(Speculation, SpeculativeLanesFallBackScalarInsideBatches)
{
    const MachineConfig base = standardConfigs()[0];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(5, base);
    const MachineConfig pred = withPredictor(base, "2bit");

    // Two plain in-order lanes (a lockstep group) mixed with
    // speculative lanes that the kernel must not cover.
    MultiIssueSim seq1(MultiIssueConfig{ 4, false }, base);
    MultiIssueSim seq2(MultiIssueConfig{ 8, false }, base);
    MultiIssueSim specSeq(MultiIssueConfig{ 4, false }, pred);
    RuuSim specRuu({ 4, 50, BusKind::kPerUnit },
                   withPredictor(base, "perfect"));
    const BatchOutcome out = runBatch({ { &seq1, &trace },
                                        { &seq2, &trace },
                                        { &specSeq, &trace },
                                        { &specRuu, &trace } });
    EXPECT_EQ(out.lockstepLanes, 2u);
    EXPECT_EQ(out.scalarLanes, 2u);

    MultiIssueSim freshSeq(MultiIssueConfig{ 4, false }, pred);
    expectSameResult(out.results.at(2), freshSeq.run(trace),
                     "speculative seq lane");
    RuuSim freshRuu({ 4, 50, BusKind::kPerUnit },
                    withPredictor(base, "perfect"));
    expectSameResult(out.results.at(3), freshRuu.run(trace),
                     "speculative ruu lane");
}

// ---- identity plumbing: cache keys, names, machine specs -------------

TEST(Speculation, PredictorJoinsCacheKeyAndConfigName)
{
    const MachineConfig base = configM11BR5();
    const MachineConfig pred = withPredictor(base, "2bit");
    EXPECT_EQ(pred.name(), base.name() + "+2bit:512:w8");

    MultiIssueSim plain({ 4, true, BusKind::kPerUnit, false }, base);
    MultiIssueSim spec({ 4, true, BusKind::kPerUnit, false }, pred);
    EXPECT_NE(plain.cacheKey(), spec.cacheKey());
    EXPECT_NE(spec.cacheKey().find("pred=2bit:512:w8"),
              std::string::npos);

    RuuSim ruu({ 4, 50, BusKind::kPerUnit }, pred);
    EXPECT_NE(ruu.cacheKey().find("pred=2bit:512:w8"),
              std::string::npos);
}

TEST(Speculation, MachineSpecPredOptionArmsThePredictor)
{
    const MachineConfig base = configM11BR5();
    const auto ooo = parseMachineSpec("ooo:4,pred=2bit", base);
    EXPECT_NE(ooo->cacheKey().find("pred=2bit:512:w8"),
              std::string::npos);
    const auto ruu = parseMachineSpec("ruu:4:50,pred=fixed:90", base);
    EXPECT_NE(ruu->cacheKey().find("pred=fixed:90:s1:w8"),
              std::string::npos);

    EXPECT_THROW(parseMachineSpec("simple,pred=2bit", base),
                 ConfigError);
    EXPECT_THROW(parseMachineSpec("ooo:4,pred=bogus", base),
                 ConfigError);
}

TEST(Speculation, NonSpeculativeMachinesRejectAnArmedPredictor)
{
    const MachineConfig pred = withPredictor(configM11BR5(), "2bit");
    EXPECT_THROW(SimpleSim{ pred }, ConfigError);
    EXPECT_THROW(Cdc6600Sim(Cdc6600Config{}, pred), ConfigError);
    EXPECT_THROW(ScoreboardSim(ScoreboardConfig::crayLike(), pred),
                 ConfigError);
    EXPECT_THROW(TomasuloSim(TomasuloConfig{}, pred), ConfigError);

    // And the speculative machines insist the predictor replaces the
    // static branch policy rather than stacking on top of it.
    EXPECT_THROW(MultiIssueSim({ 4, true, BusKind::kPerUnit, false,
                                 BranchPolicy::kOracle },
                               pred),
                 ConfigError);
    EXPECT_THROW(RuuSim({ 4, 50, BusKind::kPerUnit,
                          BranchPolicy::kBtfn },
                        pred),
                 ConfigError);
}

TEST(Speculation, TelemetryAccumulatesAcrossRuns)
{
    const SpecTelemetry before = specTelemetry();
    const MachineConfig pred =
        withPredictor(configM11BR5(), "fixed:50");
    RuuSim sim({ 4, 50, BusKind::kPerUnit }, pred);
    const SimResult r =
        sim.run(TraceLibrary::instance().decoded(2, configM11BR5()));
    ASSERT_GT(r.squashes, 0u);
    const SpecTelemetry after = specTelemetry();
    EXPECT_GE(after.squashes, before.squashes + r.squashes);
    EXPECT_GE(after.wrongPathOps, before.wrongPathOps + r.wrongPathOps);
    EXPECT_GT(after.mispredictCycles, before.mispredictCycles);
}

} // namespace
} // namespace mfusim
