/**
 * @file
 * Shared helpers for mfusim tests: terse construction of hand-built
 * dynamic traces for golden-timing tests.
 */

#ifndef MFUSIM_TESTS_TEST_UTIL_HH
#define MFUSIM_TESTS_TEST_UTIL_HH

#include <initializer_list>

#include "mfusim/core/trace.hh"

namespace mfusim
{
namespace test
{

/** Build a DynOp; branches default to taken = false. */
inline DynOp
dyn(Op op, RegId dst = kNoReg, RegId srcA = kNoReg, RegId srcB = kNoReg,
    bool taken = false)
{
    DynOp d;
    d.op = op;
    d.dst = dst;
    d.srcA = srcA;
    d.srcB = srcB;
    d.staticIdx = 0;
    d.taken = taken;
    return d;
}

/** Build a trace from a list of DynOps. */
inline DynTrace
traceOf(std::initializer_list<DynOp> ops, const char *name = "test")
{
    DynTrace trace(name);
    for (const DynOp &op : ops)
        trace.append(op);
    return trace;
}

} // namespace test
} // namespace mfusim

#endif // MFUSIM_TESTS_TEST_UTIL_HH
