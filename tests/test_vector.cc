/**
 * @file
 * Vector-unit extension tests: interpreter semantics, strip-mined
 * kernel validation, vector timing (occupancy + chaining) and the
 * scalar-only guards in the multiple-issue machines.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/interpreter.hh"
#include "mfusim/codegen/livermore.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

constexpr RegId V1 = regV(1);
constexpr RegId V2 = regV(2);
constexpr RegId V3 = regV(3);

DynOp
vop(Op op, RegId dst, RegId srcA, RegId srcB, unsigned vl)
{
    DynOp d = dyn(op, dst, srcA, srcB);
    d.vl = std::uint8_t(vl);
    return d;
}

// ---- interpreter semantics ------------------------------------------

TEST(VectorInterpreter, LoadComputeStore)
{
    Assembler as;
    as.aconst(A1, 8);           // VL = 8
    as.vsetlen(A1);
    as.aconst(A2, 0);           // src x
    as.aconst(A3, 100);         // src y
    as.aconst(A4, 200);         // dst
    as.vload(V1, A2, 1);
    as.vload(V2, A3, 1);
    as.vfadd(V3, V1, V2);
    as.vstore(A4, 1, V3);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 300);
    for (int i = 0; i < 8; ++i) {
        interp.pokeMemF(std::uint64_t(i), double(i));
        interp.pokeMemF(std::uint64_t(100 + i), 10.0 * i);
    }
    const DynTrace trace = interp.run("v");
    for (int i = 0; i < 8; ++i)
        EXPECT_DOUBLE_EQ(interp.peekMemF(std::uint64_t(200 + i)),
                         11.0 * i);
    // vl recorded on every vector op.
    for (const DynOp &op : trace.ops()) {
        if (isVector(op.op))
            EXPECT_EQ(op.vl, 8u);
    }
}

TEST(VectorInterpreter, StridedLoad)
{
    Assembler as;
    as.aconst(A1, 4);
    as.vsetlen(A1);
    as.aconst(A2, 0);
    as.vload(V1, A2, 3);        // stride 3
    as.aconst(A3, 50);
    as.vstore(A3, 1, V1);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 100);
    for (int i = 0; i < 12; ++i)
        interp.pokeMemF(std::uint64_t(i), double(i));
    interp.run("v");
    EXPECT_DOUBLE_EQ(interp.peekMemF(50), 0.0);
    EXPECT_DOUBLE_EQ(interp.peekMemF(51), 3.0);
    EXPECT_DOUBLE_EQ(interp.peekMemF(52), 6.0);
    EXPECT_DOUBLE_EQ(interp.peekMemF(53), 9.0);
}

TEST(VectorInterpreter, ScalarVectorForms)
{
    Assembler as;
    as.aconst(A1, 3);
    as.vsetlen(A1);
    as.sconstf(S1, 2.0);
    as.aconst(A2, 0);
    as.vload(V1, A2, 1);
    as.vfmulsv(V2, S1, V1);
    as.vfaddsv(V3, S1, V2);
    as.aconst(A3, 20);
    as.vstore(A3, 1, V3);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 50);
    for (int i = 0; i < 3; ++i)
        interp.pokeMemF(std::uint64_t(i), double(i + 1));
    interp.run("v");
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(interp.peekMemF(std::uint64_t(20 + i)),
                         2.0 * (i + 1) + 2.0);
}

TEST(VectorInterpreter, BadVlThrows)
{
    Assembler as;
    as.aconst(A1, 0);
    as.vsetlen(A1);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 16);
    EXPECT_THROW(interp.run("v"), std::runtime_error);

    Assembler as2;
    as2.aconst(A1, 65);
    as2.vsetlen(A1);
    as2.halt();
    Program p2 = as2.finish();
    Interpreter interp2(p2, 16);
    EXPECT_THROW(interp2.run("v"), std::runtime_error);
}

// ---- strip-mined kernels --------------------------------------------

class VectorizedKernel : public ::testing::TestWithParam<int>
{
};

TEST_P(VectorizedKernel, MatchesScalarReference)
{
    const Kernel kernel = buildVectorizedKernel(GetParam());
    const KernelRun run = runKernel(kernel);
    EXPECT_GT(run.checkedCells, 0u);
    EXPECT_EQ(run.mismatches, 0u) << "loop " << GetParam();
}

TEST_P(VectorizedKernel, FarFewerInstructionsThanScalar)
{
    const KernelRun vec =
        runKernel(buildVectorizedKernel(GetParam()));
    const DynTrace scalar = traceKernel(GetParam());
    EXPECT_LT(vec.trace.size() * 10, scalar.size())
        << "loop " << GetParam();
}

TEST_P(VectorizedKernel, VectorSpeedupOnCrayLikeMachine)
{
    const KernelRun vec =
        runKernel(buildVectorizedKernel(GetParam()));
    const DynTrace scalar = traceKernel(GetParam());
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    const ClockCycle v_cycles = cray.run(vec.trace).cycles;
    const ClockCycle s_cycles = cray.run(scalar).cycles;
    EXPECT_GT(double(s_cycles) / double(v_cycles), 5.0)
        << "loop " << GetParam();
}

TEST_P(VectorizedKernel, ChainingHelps)
{
    const KernelRun vec =
        runKernel(buildVectorizedKernel(GetParam()));
    ScoreboardConfig chained = ScoreboardConfig::crayLike();
    ScoreboardConfig unchained = ScoreboardConfig::crayLike();
    unchained.vectorChaining = false;
    const MachineConfig cfg = configM11BR5();
    const ClockCycle with_chain =
        ScoreboardSim(chained, cfg).run(vec.trace).cycles;
    const ClockCycle without =
        ScoreboardSim(unchained, cfg).run(vec.trace).cycles;
    EXPECT_LT(with_chain, without) << "loop " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Loops, VectorizedKernel,
                         ::testing::Values(1, 7, 12));

// ---- timing goldens ---------------------------------------------------

TEST(VectorTiming, OccupancyHoldsTheUnit)
{
    // Two independent 16-element vfadds: the FP add unit streams one
    // element per cycle, so the second starts 16 cycles later.
    const DynTrace trace = traceOf({
        vop(Op::kVFAdd, V1, V2, V3, 16),
        vop(Op::kVFAdd, regV(4), regV(5), regV(6), 16),
    });
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    // First: issue 0, last element at 0+6+15 = 21.  Second: unit
    // free at 16, last element at 16+6+15 = 37.
    EXPECT_EQ(cray.run(trace).cycles, 37u);
}

TEST(VectorTiming, ChainedConsumerStartsAfterFirstElement)
{
    // vload (VL=16) feeding vfadd: chained, the vfadd starts when
    // the first loaded element arrives.
    const DynTrace trace = traceOf({
        vop(Op::kVLoad, V1, A1, kNoReg, 16),
        vop(Op::kVFAdd, V2, V1, V1, 16),
    });
    const MachineConfig cfg = configM11BR5();
    ScoreboardConfig chained = ScoreboardConfig::crayLike();
    // Load: issue 0, first element 11+1 = 12, last 0+11+15 = 26.
    // Chained vfadd: issue 12, last element 12+6+15 = 33.
    EXPECT_EQ(ScoreboardSim(chained, cfg).run(trace).cycles, 33u);

    ScoreboardConfig unchained = ScoreboardConfig::crayLike();
    unchained.vectorChaining = false;
    // Unchained: vfadd waits for the full load (26), ends 26+6+15=47.
    EXPECT_EQ(ScoreboardSim(unchained, cfg).run(trace).cycles, 47u);
}

TEST(VectorTiming, SimpleMachineSerializesElements)
{
    const DynTrace trace = traceOf({
        vop(Op::kVFAdd, V1, V2, V3, 64),
    });
    SimpleSim sim(configM11BR5());
    // 6-cycle latency + 63 further elements.
    EXPECT_EQ(sim.run(trace).cycles, 69u);
}

TEST(VectorTiming, DataflowLimitCountsElements)
{
    // One 64-element vfadd: resource time = 64 elements + 6 latency.
    const DynTrace trace = traceOf({
        vop(Op::kVFAdd, V1, V2, V3, 64),
    });
    const LimitResult limit = computeLimits(trace, configM11BR5());
    EXPECT_EQ(limit.resourceCycles, 70u);
    EXPECT_EQ(limit.pseudoCycles, 69u);
}

// ---- scalar-only guards ------------------------------------------------

TEST(VectorGuards, MultiIssueRejectsVectorTraces)
{
    const DynTrace trace = traceOf({
        vop(Op::kVFAdd, V1, V2, V3, 8),
    });
    MultiIssueSim multi({ 4, true, BusKind::kPerUnit, false },
                        configM11BR5());
    EXPECT_THROW(multi.run(trace), SimError);
    RuuSim ruu({ 2, 20, BusKind::kPerUnit }, configM11BR5());
    EXPECT_THROW(ruu.run(trace), SimError);
}

} // namespace
} // namespace mfusim
