/**
 * @file
 * Observability-layer tests: the MetricsRegistry primitives, the
 * PipeTraceRecorder + exporters, and — for all six simulators — the
 * per-op schedule invariants and the cycle accounting identity
 *
 *     cycles.total = cycles.front_active
 *                  + sum(cycles.stall.*) + cycles.drain
 *
 * which populateRunMetrics() enforces (it throws on a negative
 * remainder, so merely calling it is half the test).
 */

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/obs/metrics.hh"
#include "mfusim/obs/pipe_trace.hh"
#include "mfusim/obs/run_metrics.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

namespace mfusim
{
namespace
{

// ---------------------------------------------------------------
// A minimal JSON validity checker (structure only, no values kept):
// enough to catch unbalanced brackets, bad escapes, trailing commas
// and unquoted keys in the exporters' hand-written JSON.

class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : text_(text) {}

    bool valid()
    {
        skipSpace();
        if (!value())
            return false;
        skipSpace();
        return pos_ == text_.size();
    }

  private:
    bool value()
    {
        if (pos_ >= text_.size())
            return false;
        switch (text_[pos_]) {
        case '{': return object();
        case '[': return array();
        case '"': return string();
        case 't': return literal("true");
        case 'f': return literal("false");
        case 'n': return literal("null");
        default: return number();
        }
    }

    bool object()
    {
        ++pos_;     // '{'
        skipSpace();
        if (peek() == '}') { ++pos_; return true; }
        for (;;) {
            skipSpace();
            if (!string())
                return false;
            skipSpace();
            if (peek() != ':')
                return false;
            ++pos_;
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == '}') { ++pos_; return true; }
            return false;
        }
    }

    bool array()
    {
        ++pos_;     // '['
        skipSpace();
        if (peek() == ']') { ++pos_; return true; }
        for (;;) {
            skipSpace();
            if (!value())
                return false;
            skipSpace();
            if (peek() == ',') { ++pos_; continue; }
            if (peek() == ']') { ++pos_; return true; }
            return false;
        }
    }

    bool string()
    {
        if (peek() != '"')
            return false;
        ++pos_;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= text_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= text_.size())
            return false;
        ++pos_;     // closing quote
        return true;
    }

    bool number()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        return pos_ > start;
    }

    bool literal(const char *word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    char peek() const
    {
        return pos_ < text_.size() ? text_[pos_] : '\0';
    }

    void skipSpace()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

bool
validJson(const std::string &text)
{
    return JsonChecker(text).valid();
}

// ---------------------------------------------------------------
// MetricsRegistry primitives.

TEST(Metrics, CountersAndGauges)
{
    MetricsRegistry reg;
    reg.counter("a").add(3);
    reg.counter("a").increment();
    reg.gauge("g").set(2.5);
    reg.gauge("g").add(0.5);
    EXPECT_EQ(reg.counterValue("a"), 4u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("g"), 3.0);
    EXPECT_EQ(reg.counterValue("missing"), 0u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("missing"), 0.0);
}

TEST(Metrics, KindMismatchThrows)
{
    MetricsRegistry reg;
    reg.counter("x");
    EXPECT_THROW(reg.gauge("x"), Error);
    EXPECT_THROW(reg.histogram("x", 1.0, 4), Error);
}

TEST(Metrics, HistogramBucketsAndMerge)
{
    MetricsRegistry reg;
    Histogram &h = reg.histogram("h", 10.0, 4);
    h.record(0);
    h.record(5);
    h.record(15);
    h.record(999);      // overflow
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 999.0);

    MetricsRegistry other;
    other.histogram("h", 10.0, 4).record(25);
    reg.merge(other);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.bucket(2), 1u);

    MetricsRegistry bad;
    bad.histogram("h", 5.0, 4).record(1);
    EXPECT_THROW(reg.merge(bad), Error);
}

TEST(Metrics, TimeSeriesCompactsUnderCap)
{
    MetricsRegistry reg;
    TimeSeries &s = reg.series("s", 64);
    for (ClockCycle t = 0; t < 10000; ++t)
        s.record(t, double(t));
    EXPECT_LE(s.points().size(), 64u);
    EXPECT_GT(s.stride(), 1u);
    // Sampled cycles remain sorted.
    const auto &pts = s.points();
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_LT(pts[i - 1].cycle, pts[i].cycle);
}

TEST(Metrics, MergeAccumulatesAndKeepsFirstLabels)
{
    MetricsRegistry a, b;
    a.setLabel("who", "a");
    a.counter("n").add(1);
    b.setLabel("who", "b");
    b.setLabel("extra", "e");
    b.counter("n").add(2);
    a.merge(b);
    EXPECT_EQ(a.counterValue("n"), 3u);
    EXPECT_EQ(a.labels().at("who"), "a");
    EXPECT_EQ(a.labels().at("extra"), "e");
}

TEST(Metrics, JsonAndCsvOutput)
{
    MetricsRegistry reg;
    reg.setLabel("sim", "test \"quoted\"");
    reg.counter("cycles.total").add(10);
    reg.gauge("rate").set(0.5);
    reg.histogram("occ", 1.0, 4).record(2);
    reg.series("ts").record(0, 1.0);

    std::ostringstream json;
    reg.writeJson(json);
    EXPECT_TRUE(validJson(json.str())) << json.str();
    EXPECT_NE(json.str().find("mfusim-metrics-v1"), std::string::npos);

    std::ostringstream csv;
    reg.writeCsv(csv);
    EXPECT_NE(csv.str().find("name,kind,value"), std::string::npos);
    EXPECT_NE(csv.str().find("cycles.total"), std::string::npos);
}

TEST(Metrics, Log2HistogramBucketSemantics)
{
    // Bucket i counts values with bit_width == i: bucket 0 is
    // exactly 0, bucket i holds [2^(i-1), 2^i - 1].
    MetricsRegistry reg;
    Histogram &h = reg.histogramLog2("lat", 8, 1e-9);
    EXPECT_TRUE(h.isLog2());
    EXPECT_DOUBLE_EQ(h.unitScale(), 1e-9);

    h.record(0);        // bucket 0
    h.record(1);        // bucket 1
    h.record(2);        // bucket 2
    h.record(3);        // bucket 2
    h.record(4);        // bucket 3
    h.record(7);        // bucket 3
    h.record(127);      // bucket 7 (last in-range)
    h.record(128);      // bit_width 8 >= bucketCount: overflow
    EXPECT_EQ(h.count(), 8u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 2u);
    EXPECT_EQ(h.bucket(3), 2u);
    EXPECT_EQ(h.bucket(7), 1u);
    EXPECT_EQ(h.overflow(), 1u);

    // Upper edges are (2^i)-1, the largest value the bucket holds.
    EXPECT_EQ(h.bucketUpperEdge(0), 0u);
    EXPECT_EQ(h.bucketUpperEdge(1), 1u);
    EXPECT_EQ(h.bucketUpperEdge(2), 3u);
    EXPECT_EQ(h.bucketUpperEdge(7), 127u);
}

TEST(Metrics, Log2HistogramMergeGeometryChecked)
{
    MetricsRegistry a, b;
    a.histogramLog2("lat", 8, 1e-9).record(5);
    b.histogramLog2("lat", 8, 1e-9).record(9);
    a.merge(b);
    EXPECT_EQ(a.histogramLog2("lat", 8, 1e-9).count(), 2u);

    // A linear histogram of the same name must not merge in.
    MetricsRegistry linear;
    linear.histogram("lat", 1.0, 8).record(1);
    EXPECT_THROW(a.merge(linear), Error);
    // Nor a log2 histogram with a different display scale.
    MetricsRegistry scaled;
    scaled.histogramLog2("lat", 8, 1e-6).record(1);
    EXPECT_THROW(a.merge(scaled), Error);
}

TEST(Prometheus, EmbeddedLabelNamesRenderAsOneFamily)
{
    MetricsRegistry reg;
    reg.setLabel("sim", "t");
    reg.histogramLog2("http.phase_seconds{phase=parse}", 4, 1e-9)
        .record(3);
    reg.histogramLog2("http.phase_seconds{phase=compute}", 4, 1e-9)
        .record(5);
    reg.gauge("build_info{version=v1,git_sha=abc}").set(1.0);
    const std::string text = renderPrometheus(reg);

    // One TYPE line for the whole family, not one per labeled entry.
    std::size_t typeCount = 0, pos = 0;
    const std::string typeLine =
        "# TYPE mfusim_http_phase_seconds histogram";
    while ((pos = text.find(typeLine, pos)) != std::string::npos) {
        ++typeCount;
        pos += typeLine.size();
    }
    EXPECT_EQ(typeCount, 1u);

    // Embedded labels merge with registry labels (le renders last);
    // log2 edges render scaled to seconds, %.9g-clean.
    EXPECT_NE(text.find("mfusim_http_phase_seconds_bucket"
                        "{phase=\"parse\",sim=\"t\",le=\"0\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("mfusim_http_phase_seconds_bucket"
                        "{phase=\"parse\",sim=\"t\",le=\"3e-09\"}"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("mfusim_http_phase_seconds_count"
                        "{phase=\"compute\",sim=\"t\"} 1"),
              std::string::npos)
        << text;
    EXPECT_NE(
        text.find("mfusim_build_info{git_sha=\"abc\",sim=\"t\","
                  "version=\"v1\"} 1"),
        std::string::npos)
        << text;
}

TEST(Metrics, ConcurrentRecordersMergeWithoutLostCounts)
{
    // The serve-tier pattern: each thread records into its own
    // registry, a collector merges them under a lock.  The merged
    // output must be exact (no lost counts) and deterministic in
    // shape regardless of merge order.
    constexpr unsigned kThreads = 8;
    constexpr unsigned kRecordsPerThread = 5000;

    MetricsRegistry merged;
    std::mutex mergedMutex;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            MetricsRegistry local;
            // Registration order varies per thread; merge must align
            // by name, not position.
            if (t % 2 == 0) {
                local.histogramLog2("lat", 24, 1e-9);
                local.counter("reqs");
            } else {
                local.counter("reqs");
                local.histogramLog2("lat", 24, 1e-9);
            }
            Histogram &h = local.histogramLog2("lat", 24, 1e-9);
            Counter &c = local.counter("reqs");
            for (unsigned i = 0; i < kRecordsPerThread; ++i) {
                h.record((std::uint64_t(t) << 10) + i);
                c.increment();
            }
            std::lock_guard<std::mutex> lock(mergedMutex);
            merged.merge(local);
        });
    }
    for (std::thread &thread : threads)
        thread.join();

    EXPECT_EQ(merged.counterValue("reqs"),
              std::uint64_t(kThreads) * kRecordsPerThread);
    const Histogram &h = merged.histogramLog2("lat", 24, 1e-9);
    EXPECT_EQ(h.count(),
              std::uint64_t(kThreads) * kRecordsPerThread);
    std::uint64_t inBuckets = h.overflow();
    for (std::size_t i = 0; i < h.bucketCount(); ++i)
        inBuckets += h.bucket(i);
    EXPECT_EQ(inBuckets, h.count());
}

// ---------------------------------------------------------------
// FanoutSink: events reach every child, stalls only obs children.

TEST(ObsSink, FanoutForwardsToAllChildren)
{
    PipeTraceRecorder a, b;
    FanoutSink fanout;
    fanout.add(&a);
    fanout.add(&b);
    fanout.onEvent(AuditEvent{ 3, 0, 1, AuditPhase::kIssue });
    fanout.onStall(StallSample{ 4, 2, 0, StallCause::kRaw });
    for (PipeTraceRecorder *r : { &a, &b }) {
        ASSERT_EQ(r->opCount(), 1u);
        EXPECT_EQ(r->issue(0), 3u);
        ASSERT_EQ(r->stalls().size(), 1u);
        EXPECT_EQ(r->stalls()[0].cycles, 2u);
    }
}

// ---------------------------------------------------------------
// All six simulators: schedule invariants + the accounting identity.

struct NamedSim
{
    std::string name;
    std::unique_ptr<Simulator> sim;
    bool inOrderFront;      // front events monotonic in op order
};

std::vector<NamedSim>
allSims(const MachineConfig &cfg)
{
    std::vector<NamedSim> sims;
    sims.push_back({ "simple", std::make_unique<SimpleSim>(cfg),
                     true });
    sims.push_back({ "cray",
                     std::make_unique<ScoreboardSim>(
                         ScoreboardConfig::crayLike(), cfg),
                     true });
    sims.push_back({ "cdc",
                     std::make_unique<Cdc6600Sim>(Cdc6600Config{},
                                                  cfg),
                     true });
    sims.push_back({ "tomasulo",
                     std::make_unique<TomasuloSim>(TomasuloConfig{},
                                                   cfg),
                     true });
    sims.push_back({ "ooo4",
                     std::make_unique<MultiIssueSim>(
                         MultiIssueConfig{ 4, true, BusKind::kPerUnit,
                                           false,
                                           BranchPolicy::kBlocking },
                         cfg),
                     false });
    sims.push_back({ "ruu",
                     std::make_unique<RuuSim>(
                         RuuConfig{ 2, 30, BusKind::kPerUnit,
                                    BranchPolicy::kBlocking },
                         cfg),
                     true });
    return sims;
}

TEST(ObsAllSims, ScheduleCompleteAndMonotonic)
{
    const MachineConfig cfg = configM11BR5();
    for (int loop : { 3, 5 }) {
        const DecodedTrace trace(TraceLibrary::instance().trace(loop),
                                 cfg);
        for (NamedSim &entry : allSims(cfg)) {
            PipeTraceRecorder rec;
            entry.sim->attachAudit(&rec);
            entry.sim->run(trace);
            entry.sim->attachAudit(nullptr);

            ASSERT_EQ(rec.opCount(), trace.size())
                << entry.name << " LL" << loop;
            ClockCycle prevFront = 0;
            for (std::size_t i = 0; i < trace.size(); ++i) {
                const std::string where = entry.name + " LL" +
                                          std::to_string(loop) +
                                          " op " + std::to_string(i);
                // Every op enters the front end exactly once...
                ASSERT_NE(rec.front(i), PipeTraceRecorder::kNoCycle)
                    << where;
                // ...executes no earlier than it entered...
                EXPECT_LE(rec.front(i), rec.exec(i)) << where;
                // ...and completes after starting, where completion
                // is modeled (branches produce no result).
                if (rec.complete(i) != PipeTraceRecorder::kNoCycle)
                    EXPECT_LT(rec.exec(i), rec.complete(i) + 1)
                        << where;
                if (rec.commit(i) != PipeTraceRecorder::kNoCycle &&
                    rec.complete(i) != PipeTraceRecorder::kNoCycle)
                    EXPECT_LE(rec.complete(i), rec.commit(i))
                        << where;
                if (entry.inOrderFront) {
                    EXPECT_LE(prevFront, rec.front(i)) << where;
                    prevFront = rec.front(i);
                }
            }
        }
    }
}

TEST(ObsAllSims, StallIdentityHolds)
{
    const MachineConfig cfg = configM11BR5();
    for (int loop : { 1, 3, 5, 7, 12 }) {
        const DecodedTrace trace(TraceLibrary::instance().trace(loop),
                                 cfg);
        for (NamedSim &entry : allSims(cfg)) {
            PipeTraceRecorder rec;
            entry.sim->attachAudit(&rec);
            const SimResult r = entry.sim->run(trace);
            entry.sim->attachAudit(nullptr);

            MetricsRegistry reg;
            // Throws if attribution overlaps issue cycles.
            ASSERT_NO_THROW(
                populateRunMetrics(reg, trace, rec, r, *entry.sim))
                << entry.name << " LL" << loop;

            std::uint64_t stall = 0;
            for (unsigned c = 0; c < kNumStallCauses; ++c)
                stall += reg.counterValue(
                    std::string("cycles.stall.") +
                    stallCauseName(StallCause(c)));
            EXPECT_EQ(reg.counterValue("cycles.total"),
                      reg.counterValue("cycles.front_active") +
                          stall + reg.counterValue("cycles.drain"))
                << entry.name << " LL" << loop;
            EXPECT_EQ(reg.counterValue("cycles.total"), r.cycles)
                << entry.name << " LL" << loop;
            EXPECT_EQ(reg.counterValue("ops.total"), r.instructions)
                << entry.name << " LL" << loop;
            // Utilization gauges are fractions.
            for (const auto &label : reg.labels())
                (void)label;
        }
    }
}

TEST(ObsAllSims, InstrumentedRunMatchesFastPath)
{
    // Attaching a sink disables the steady-state fast path; the
    // result must nevertheless be identical to the default run.
    const MachineConfig cfg = configM11BR5();
    const DecodedTrace trace(TraceLibrary::instance().trace(7), cfg);
    for (NamedSim &entry : allSims(cfg)) {
        const SimResult fast = entry.sim->run(trace);
        PipeTraceRecorder rec;
        entry.sim->attachAudit(&rec);
        const SimResult slow = entry.sim->run(trace);
        entry.sim->attachAudit(nullptr);
        EXPECT_EQ(fast.cycles, slow.cycles) << entry.name;
        EXPECT_EQ(fast.instructions, slow.instructions)
            << entry.name;
        if (fast.hasStalls && slow.hasStalls) {
            EXPECT_EQ(fast.stalls.raw, slow.stalls.raw)
                << entry.name;
            EXPECT_EQ(fast.stalls.branch, slow.stalls.branch)
                << entry.name;
        }
        // The instrumented run must not have taken the fast path.
        EXPECT_EQ(slow.steadyOpsSkipped, 0u) << entry.name;
    }
}

// ---------------------------------------------------------------
// Exporters.

TEST(ObsExport, ChromeTraceIsValidJson)
{
    const MachineConfig cfg = configM11BR5();
    const DecodedTrace trace(TraceLibrary::instance().trace(5), cfg);
    for (NamedSim &entry : allSims(cfg)) {
        PipeTraceRecorder rec;
        entry.sim->attachAudit(&rec);
        entry.sim->run(trace);
        entry.sim->attachAudit(nullptr);
        std::ostringstream out;
        writeChromeTrace(out, rec, trace, entry.name + " LL5");
        EXPECT_TRUE(validJson(out.str())) << entry.name;
        EXPECT_NE(out.str().find("traceEvents"), std::string::npos)
            << entry.name;
        EXPECT_NE(out.str().find("process_name"), std::string::npos)
            << entry.name;
    }
}

TEST(ObsExport, PipeviewShowsSchedule)
{
    const MachineConfig cfg = configM11BR5();
    const DecodedTrace trace(TraceLibrary::instance().trace(5), cfg);
    RuuSim sim(RuuConfig{ 2, 30, BusKind::kPerUnit,
                          BranchPolicy::kBlocking },
               cfg);
    PipeTraceRecorder rec;
    sim.attachAudit(&rec);
    sim.run(trace);
    sim.attachAudit(nullptr);
    std::ostringstream out;
    writePipeview(out, rec, trace, 8, 80);
    const std::string text = out.str();
    EXPECT_NE(text.find("pipeview:"), std::string::npos);
    EXPECT_NE(text.find(mnemonicOf(trace.op(0))),
              std::string::npos);
    EXPECT_NE(text.find('I'), std::string::npos);
    // 8-op clamp plus a truncation note for the rest.
    EXPECT_NE(text.find("more ops"), std::string::npos);
}

TEST(ObsExport, ScopedPhaseTimerAccumulates)
{
    MetricsRegistry reg;
    {
        ScopedPhaseTimer timer(reg.gauge("profile.x_seconds"));
        volatile unsigned sink = 0;
        for (unsigned i = 0; i < 100000; ++i)
            sink = sink + i;
    }
    EXPECT_GT(reg.gaugeValue("profile.x_seconds"), 0.0);
}

// ---------------------------------------------------------------
// Prometheus text exposition.

/** The registry behind the pinned golden file. */
MetricsRegistry
prometheusGoldenRegistry()
{
    MetricsRegistry reg;
    reg.setLabel("sim", "CRAY-like");
    reg.setLabel("config", "M11\"BR5\\x");  // value needs escaping
    reg.counter("issues.total").add(12345);
    reg.counter("stall.raw").add(678);
    reg.gauge("rate.LL5").set(0.385);
    reg.gauge("profile.simulate_seconds").set(1.5);
    Histogram &h = reg.histogram("queue depth!", 2, 3);
    h.record(0);
    h.record(1);
    h.record(3);
    h.record(5);
    h.record(100);      // overflow bucket
    reg.series("occupancy.timeline").record(1, 0.5);
    return reg;
}

TEST(Prometheus, RenderMatchesPinnedGolden)
{
    const std::string rendered =
        renderPrometheus(prometheusGoldenRegistry());

    std::ifstream golden(std::string(MFUSIM_TEST_GOLDEN_DIR) +
                         "/metrics.prom");
    ASSERT_TRUE(golden.good())
        << "missing golden file; expected output:\n" << rendered;
    std::ostringstream want;
    want << golden.rdbuf();
    EXPECT_EQ(rendered, want.str())
        << "renderPrometheus drifted from the pinned golden; if the "
           "change is intentional, update tests/golden/metrics.prom";
}

TEST(Prometheus, FormatInvariants)
{
    const std::string text =
        renderPrometheus(prometheusGoldenRegistry());

    // Counters carry the _total suffix and the sanitized prefix.
    EXPECT_NE(text.find("# TYPE mfusim_issues_total_total counter"),
              std::string::npos)
        << text;
    // Name sanitization: "queue depth!" -> queue_depth_.
    EXPECT_NE(text.find("mfusim_queue_depth__bucket"),
              std::string::npos)
        << text;
    // Histograms are cumulative and end at +Inf == _count.
    const std::size_t inf = text.find("le=\"+Inf\"");
    ASSERT_NE(inf, std::string::npos);
    EXPECT_NE(text.find("mfusim_queue_depth__count"),
              std::string::npos);
    // Label values are escaped.
    EXPECT_NE(text.find("M11\\\"BR5\\\\x"), std::string::npos)
        << text;
    // Time series are not exported.
    EXPECT_EQ(text.find("occupancy"), std::string::npos) << text;
    // Every line is a comment or a sample ending in a number.
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        ASSERT_FALSE(line.empty());
        if (line[0] == '#')
            continue;
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        char *end = nullptr;
        std::strtod(line.c_str() + space + 1, &end);
        EXPECT_EQ(*end, '\0') << line;
    }
}

TEST(Prometheus, SweepRegistryRendersCleanly)
{
    // A real merged sweep registry (the /metrics payload shape for
    // an instrumented run) renders without throwing and contains the
    // per-loop rate gauges.
    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<SimpleSim>(c);
    };
    const SweepMetrics sweep = parallelPerLoopMetrics(
        factory, { 1, 2 }, configM11BR5(), 1);
    const std::string text = renderPrometheus(sweep.metrics);
    EXPECT_NE(text.find("mfusim_rate_LL1"), std::string::npos)
        << text;
    EXPECT_NE(text.find("mfusim_rate_LL2"), std::string::npos);
}

} // namespace
} // namespace mfusim
