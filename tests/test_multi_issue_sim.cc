/**
 * @file
 * Multiple-issue buffer machine golden tests: same-cycle issue,
 * sequential blocking, out-of-order issue, taken-branch squash,
 * result-bus organizations and the WAR ablation knob.
 */

#include <gtest/gtest.h>

#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

ClockCycle
cyclesOn(const MultiIssueConfig &org, const MachineConfig &cfg,
         const DynTrace &trace)
{
    MultiIssueSim sim(org, cfg);
    return sim.run(trace).cycles;
}

TEST(MultiIssueSim, TwoIndependentOpsIssueTogether)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
    });
    // N-Bus: both at cycle 0, done at 1.
    EXPECT_EQ(cyclesOn({ 2, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              1u);
    // 1-Bus: completions would collide at cycle 1; second op slips
    // to cycle 1, done 2.
    EXPECT_EQ(cyclesOn({ 2, false, BusKind::kSingle, false },
                       configM11BR5(), trace),
              2u);
    // X-Bar behaves like N-Bus here.
    EXPECT_EQ(cyclesOn({ 2, false, BusKind::kCrossbar, false },
                       configM11BR5(), trace),
              1u);
}

TEST(MultiIssueSim, DependentPairCannotShareACycle)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
    });
    // smovs waits for S1 (ready cycle 1): issues 1, done 2.
    EXPECT_EQ(cyclesOn({ 2, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              2u);
}

TEST(MultiIssueSim, WawInFlightBlocks)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
    });
    // sconst waits for the load's register reservation (11), done 12.
    EXPECT_EQ(cyclesOn({ 2, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              12u);
}

TEST(MultiIssueSim, SequentialBlockingStopsSuccessors)
{
    // Window of 3: load; dependent move; independent sconst.
    // Sequential: sconst may not pass the blocked move.
    const DynTrace seq_trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSMovS, S2, S1),
        dyn(Op::kSConst, S3),
    });
    const ClockCycle seq =
        cyclesOn({ 3, false, BusKind::kPerUnit, false },
                 configM11BR5(), seq_trace);
    const ClockCycle ooo =
        cyclesOn({ 3, true, BusKind::kPerUnit, false },
                 configM11BR5(), seq_trace);
    // In-order: move at 11 (done 12), sconst at 11 too (same cycle,
    // after the move issued).  Out-of-order: sconst already issued
    // at cycle 0.  End time is the move's completion either way, but
    // the refill boundary differs with a longer tail:
    EXPECT_EQ(seq, 12u);
    EXPECT_EQ(ooo, 12u);
}

TEST(MultiIssueSim, OutOfOrderIssuesPastBlockedInstruction)
{
    // Make the difference observable: the second load uses the
    // memory port; issuing it early pipelines it behind the first.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSMovS, S2, S1),        // blocked 11 cycles
        dyn(Op::kLoadS, S3, A2),        // independent
        dyn(Op::kSConst, S4),
    });
    // Sequential: load0@0, move@11, load1@11 (done 22), sconst@11.
    EXPECT_EQ(cyclesOn({ 4, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              22u);
    // OOO: load0@0, load1@1 (done 12), sconst@1, move@11 (done 12).
    EXPECT_EQ(cyclesOn({ 4, true, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              12u);
}

TEST(MultiIssueSim, OutOfOrderStillBlocksOnBufferRaw)
{
    // OOO may not issue a reader before an earlier unissued writer.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),        // S1 busy till 11
        dyn(Op::kFAdd, S2, S1, S1),     // blocked on S1
        dyn(Op::kSMovS, S3, S2),        // reads S2: must respect the
                                        // unissued fadd (buffer RAW)
    });
    // fadd at 11, done 17; smovs at 17, done 18.
    EXPECT_EQ(cyclesOn({ 3, true, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              18u);
}

TEST(MultiIssueSim, OutOfOrderStillBlocksOnBufferWaw)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),     // blocked: writes S2 late
        dyn(Op::kSConst, S2),           // WAW with unissued fadd
    });
    // fadd issues at 11 (done 17); sconst's WAW-in-buffer clears at
    // 11 but the in-flight WAW reservation holds until 17; done 18.
    EXPECT_EQ(cyclesOn({ 3, true, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              18u);
}

TEST(MultiIssueSim, WarKnobDelaysOverwrite)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S3),     // reads S3, blocked on S1
        dyn(Op::kSConst, S3),           // writes S3 (WAR vs fadd)
    });
    // Without WAR blocking the sconst issues at cycle 0.
    const ClockCycle loose =
        cyclesOn({ 3, true, BusKind::kPerUnit, false },
                 configM11BR5(), trace);
    // With WAR blocking it waits for the fadd to issue (11), so the
    // overall end moves from the fadd's 17 to the sconst's... still
    // the fadd dominates; use a cheaper tail op to observe:
    const ClockCycle strict =
        cyclesOn({ 3, true, BusKind::kPerUnit, true },
                 configM11BR5(), trace);
    EXPECT_LE(loose, strict);
    EXPECT_EQ(loose, 17u);
    EXPECT_EQ(strict, 17u);     // fadd completion dominates both
}

TEST(MultiIssueSim, TakenBranchSquashesRestOfBuffer)
{
    // Window of 4 holds [sconst, taken-branch, <wrong path>...]:
    // the two trailing entries are refilled from the target and may
    // only issue after the branch resolves.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kSConst, S2),           // branch target
        dyn(Op::kSConst, S3),
    });
    // sconst@0, branch@0 (A0 never written: ready at 0), floor 5;
    // targets issue at 5 together, done 6.
    EXPECT_EQ(cyclesOn({ 4, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              6u);
}

TEST(MultiIssueSim, NotTakenBranchKeepsWindow)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, false),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    // Same timing as the taken case (fall-through also pays the
    // branch time), but via the in-window path.
    EXPECT_EQ(cyclesOn({ 4, false, BusKind::kPerUnit, false },
                       configM11BR5(), trace),
              6u);
}

TEST(MultiIssueSim, WidthOneMatchesCrayScoreboard)
{
    // Construct a trace with all hazard types and compare.
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A1),
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
        dyn(Op::kFMul, S3, S2, S2),
        dyn(Op::kSConst, S4),
        dyn(Op::kStoreS, kNoReg, A1, S3),
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kLoadS, S5, A1),
        dyn(Op::kFAdd, S6, S5, S5),
    });
    for (const MachineConfig &cfg : standardConfigs()) {
        MultiIssueSim multi({ 1, false, BusKind::kSingle, false }, cfg);
        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        EXPECT_EQ(multi.run(trace).cycles, cray.run(trace).cycles)
            << cfg.name();
    }
}

TEST(MultiIssueSim, Name)
{
    MultiIssueSim seq({ 4, false, BusKind::kPerUnit, false },
                      configM11BR5());
    EXPECT_EQ(seq.name(), "SeqIssue(w=4, N-Bus)");
    MultiIssueSim ooo({ 2, true, BusKind::kSingle, false },
                      configM11BR5());
    EXPECT_EQ(ooo.name(), "OutOfOrderIssue(w=2, 1-Bus)");
}

TEST(MultiIssueSim, EmptyTrace)
{
    MultiIssueSim sim({ 4, true, BusKind::kPerUnit, false },
                      configM11BR5());
    const SimResult r = sim.run(traceOf({}));
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.instructions, 0u);
}

} // namespace
} // namespace mfusim
