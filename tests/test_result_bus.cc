/**
 * @file
 * Result-bus reservation tests.
 */

#include <gtest/gtest.h>

#include "mfusim/funits/result_bus.hh"

namespace mfusim
{
namespace
{

TEST(CycleReservations, ReserveAndQuery)
{
    CycleReservations res;
    EXPECT_FALSE(res.isReserved(5));
    EXPECT_TRUE(res.tryReserve(5));
    EXPECT_TRUE(res.isReserved(5));
    EXPECT_FALSE(res.tryReserve(5));
    EXPECT_FALSE(res.isReserved(4));
    EXPECT_FALSE(res.isReserved(6));
}

TEST(CycleReservations, AdvancePreservesFutureReservations)
{
    CycleReservations res;
    res.tryReserve(10);
    res.tryReserve(20);
    res.advanceTo(15);
    EXPECT_FALSE(res.isReserved(10));   // past, forgotten
    EXPECT_TRUE(res.isReserved(20));
}

TEST(CycleReservations, AdvanceFarClearsEverything)
{
    CycleReservations res;
    res.tryReserve(3);
    res.advanceTo(1000);
    EXPECT_FALSE(res.isReserved(1000));
    EXPECT_TRUE(res.tryReserve(1001));
}

TEST(CycleReservations, WindowEdge)
{
    CycleReservations res;
    res.advanceTo(100);
    EXPECT_TRUE(res.tryReserve(100));
    EXPECT_TRUE(res.tryReserve(163));   // last cycle in window
    EXPECT_TRUE(res.isReserved(163));
}

TEST(CycleReservations, Reset)
{
    CycleReservations res;
    res.advanceTo(50);
    res.tryReserve(55);
    res.reset();
    EXPECT_FALSE(res.isReserved(55));
    EXPECT_TRUE(res.tryReserve(5));
}

TEST(ResultBusSet, SingleBusConflicts)
{
    ResultBusSet bus(BusKind::kSingle, 4);
    EXPECT_EQ(bus.numBusses(), 1u);
    EXPECT_TRUE(bus.canReserve(0, 7));
    bus.reserve(0, 7);
    // All units share the one bus.
    EXPECT_FALSE(bus.canReserve(3, 7));
    EXPECT_TRUE(bus.canReserve(3, 8));
}

TEST(ResultBusSet, PerUnitBussesAreIndependent)
{
    ResultBusSet bus(BusKind::kPerUnit, 4);
    EXPECT_EQ(bus.numBusses(), 4u);
    bus.reserve(0, 7);
    EXPECT_FALSE(bus.canReserve(0, 7));
    EXPECT_TRUE(bus.canReserve(1, 7));
    EXPECT_TRUE(bus.canReserve(2, 7));
    bus.reserve(1, 7);
    EXPECT_FALSE(bus.canReserve(1, 7));
}

TEST(ResultBusSet, CrossbarUsesAnyFreeBus)
{
    ResultBusSet bus(BusKind::kCrossbar, 2);
    // Two results in the same cycle fit on the two busses
    // regardless of which unit produced them.
    EXPECT_TRUE(bus.canReserve(0, 9));
    bus.reserve(0, 9);
    EXPECT_TRUE(bus.canReserve(0, 9));  // second bus still free
    bus.reserve(0, 9);
    EXPECT_FALSE(bus.canReserve(1, 9)); // both taken now
    EXPECT_TRUE(bus.canReserve(1, 10));
}

TEST(ResultBusSet, AdvanceAllBusses)
{
    ResultBusSet bus(BusKind::kPerUnit, 2);
    bus.reserve(0, 5);
    bus.advanceTo(60);              // slides both bus windows
    bus.reserve(1, 70);
    EXPECT_TRUE(bus.canReserve(0, 65));
    EXPECT_TRUE(bus.canReserve(0, 70));     // bus 0 free at 70
    EXPECT_FALSE(bus.canReserve(1, 70));    // bus 1 taken at 70
}

TEST(ResultBusSet, Names)
{
    EXPECT_STREQ(busKindName(BusKind::kPerUnit), "N-Bus");
    EXPECT_STREQ(busKindName(BusKind::kSingle), "1-Bus");
    EXPECT_STREQ(busKindName(BusKind::kCrossbar), "X-Bar");
}

} // namespace
} // namespace mfusim
