/**
 * @file
 * Register file layout tests.
 */

#include <gtest/gtest.h>

#include "mfusim/core/registers.hh"

namespace mfusim
{
namespace
{

TEST(Registers, FlatLayoutIsContiguous)
{
    EXPECT_EQ(kABase, 0u);
    EXPECT_EQ(kSBase, 8u);
    EXPECT_EQ(kBBase, 16u);
    EXPECT_EQ(kTBase, 80u);
    EXPECT_EQ(kVBase, 144u);
    EXPECT_EQ(kVlReg, 152u);
    EXPECT_EQ(kNumRegs, 153u);
}

TEST(Registers, ClassOfEveryRegister)
{
    for (unsigned i = 0; i < kNumARegs; ++i)
        EXPECT_EQ(classOf(regA(i)), RegClass::A);
    for (unsigned i = 0; i < kNumSRegs; ++i)
        EXPECT_EQ(classOf(regS(i)), RegClass::S);
    for (unsigned i = 0; i < kNumBRegs; ++i)
        EXPECT_EQ(classOf(regB(i)), RegClass::B);
    for (unsigned i = 0; i < kNumTRegs; ++i)
        EXPECT_EQ(classOf(regT(i)), RegClass::T);
    for (unsigned i = 0; i < kNumVRegs; ++i)
        EXPECT_EQ(classOf(regV(i)), RegClass::V);
    EXPECT_EQ(classOf(kVlReg), RegClass::VL);
}

TEST(Registers, IndexOfRoundTrips)
{
    for (unsigned i = 0; i < kNumARegs; ++i)
        EXPECT_EQ(indexOf(regA(i)), i);
    for (unsigned i = 0; i < kNumSRegs; ++i)
        EXPECT_EQ(indexOf(regS(i)), i);
    for (unsigned i = 0; i < kNumBRegs; ++i)
        EXPECT_EQ(indexOf(regB(i)), i);
    for (unsigned i = 0; i < kNumTRegs; ++i)
        EXPECT_EQ(indexOf(regT(i)), i);
    for (unsigned i = 0; i < kNumVRegs; ++i)
        EXPECT_EQ(indexOf(regV(i)), i);
}

TEST(Registers, NoOverlapBetweenFiles)
{
    // Every flat id maps back to exactly one (class, index) pair.
    for (RegId r = 0; r < kNumRegs; ++r) {
        switch (classOf(r)) {
          case RegClass::A:
            EXPECT_EQ(regA(indexOf(r)), r);
            break;
          case RegClass::S:
            EXPECT_EQ(regS(indexOf(r)), r);
            break;
          case RegClass::B:
            EXPECT_EQ(regB(indexOf(r)), r);
            break;
          case RegClass::T:
            EXPECT_EQ(regT(indexOf(r)), r);
            break;
          case RegClass::V:
            EXPECT_EQ(regV(indexOf(r)), r);
            break;
          case RegClass::VL:
            EXPECT_EQ(kVlReg, r);
            break;
        }
    }
}

TEST(Registers, Names)
{
    EXPECT_EQ(regName(A0), "A0");
    EXPECT_EQ(regName(S7), "S7");
    EXPECT_EQ(regName(regB(17)), "B17");
    EXPECT_EQ(regName(regT(63)), "T63");
    EXPECT_EQ(regName(regV(3)), "V3");
    EXPECT_EQ(regName(kVlReg), "VL");
    EXPECT_EQ(regName(kNoReg), "--");
}

TEST(Registers, Validity)
{
    EXPECT_TRUE(isValidReg(0));
    EXPECT_TRUE(isValidReg(kNumRegs - 1));
    EXPECT_FALSE(isValidReg(kNumRegs));
    EXPECT_FALSE(isValidReg(kNoReg));
}

TEST(Registers, NamedConstantsMatchConstructors)
{
    EXPECT_EQ(A0, regA(0));
    EXPECT_EQ(A7, regA(7));
    EXPECT_EQ(S0, regS(0));
    EXPECT_EQ(S7, regS(7));
}

} // namespace
} // namespace mfusim
