/**
 * @file
 * Replicated functional units / memory ports (extension) tests.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/synthetic.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/funits/fu_pool.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

TEST(FuReplication, TwoCopiesAcceptTwoPerCycle)
{
    FuPool pool({ FuDiscipline::kNonSegmented,
                  MemDiscipline::kInterleaved, 2, 1 },
                configM11BR5());
    // Two non-segmented fadds at cycle 0: both accepted.
    EXPECT_TRUE(pool.canAccept(Op::kFAdd, 0));
    pool.accept(Op::kFAdd, 0);
    EXPECT_TRUE(pool.canAccept(Op::kFAdd, 0));
    pool.accept(Op::kFAdd, 0);
    // Third must wait for a unit to free (latency 6).
    EXPECT_FALSE(pool.canAccept(Op::kFAdd, 0));
    EXPECT_EQ(pool.earliestAccept(Op::kFAdd, 0), 6u);
}

TEST(FuReplication, TwoMemoryPortsDoubleStreamRate)
{
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved, 1, 2 },
                configM11BR5());
    pool.accept(Op::kLoadS, 0);
    EXPECT_TRUE(pool.canAccept(Op::kLoadS, 0));    // second port
    pool.accept(Op::kLoadS, 0);
    EXPECT_FALSE(pool.canAccept(Op::kLoadS, 0));
    EXPECT_TRUE(pool.canAccept(Op::kLoadS, 1));
}

TEST(FuReplication, ResourceLimitScalesWithCopies)
{
    const DynTrace trace = synthetic::independent(300);  // fadds
    const LimitResult one =
        computeLimits(trace, configM11BR5(), false, 1, 1);
    const LimitResult two =
        computeLimits(trace, configM11BR5(), false, 2, 1);
    EXPECT_EQ(one.resourceCycles, 306u);
    EXPECT_EQ(two.resourceCycles, 156u);
    // Pseudo limit unchanged (unlimited resources by definition).
    EXPECT_EQ(one.pseudoCycles, two.pseudoCycles);
}

TEST(FuReplication, MemPortsScaleMemoryResourceLimit)
{
    const DynTrace trace = synthetic::memoryStream(400, 100);
    const LimitResult one =
        computeLimits(trace, configM11BR5(), false, 1, 1);
    const LimitResult two =
        computeLimits(trace, configM11BR5(), false, 1, 2);
    EXPECT_EQ(one.resourceCycles, 411u);
    EXPECT_EQ(two.resourceCycles, 211u);
}

TEST(FuReplication, ScoreboardBenefitsOnIndependentWork)
{
    // Two copies let back-to-back NonSegmented ops overlap.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S6, S7),
        dyn(Op::kFAdd, S2, S6, S7),
    });
    ScoreboardConfig one = ScoreboardConfig::nonSegmented();
    ScoreboardConfig two = ScoreboardConfig::nonSegmented();
    two.fuCopies = 2;
    const MachineConfig cfg = configM11BR5();
    // One copy: second fadd waits until 6, done 12.
    EXPECT_EQ(ScoreboardSim(one, cfg).run(trace).cycles, 12u);
    // Two copies: issues at 1... completion 7 collides with 6?  No:
    // 0+6=6 and 1+6=7 -> fine; done 7.
    EXPECT_EQ(ScoreboardSim(two, cfg).run(trace).cycles, 7u);
}

TEST(FuReplication, RuuMemoryBoundLoopGainsFromSecondPort)
{
    // A memory stream is port-bound on the RUU machine: a second
    // port nearly doubles throughput.
    const DynTrace trace = synthetic::memoryStream(400, 70);
    const MachineConfig cfg = configM11BR5();
    RuuSim one({ 4, 64, BusKind::kPerUnit,
                 BranchPolicy::kBlocking, 1, 1 },
               cfg);
    RuuSim two({ 4, 64, BusKind::kPerUnit,
                 BranchPolicy::kBlocking, 1, 2 },
               cfg);
    const double r1 = one.run(trace).issueRate();
    const double r2 = two.run(trace).issueRate();
    EXPECT_GT(r2, r1 * 1.5);
}

TEST(FuReplication, ExtraUnitsNeverHurtMuchOnBenchmarks)
{
    const MachineConfig cfg = configM11BR5();
    for (int id : { 1, 5, 7 }) {
        const DynTrace &trace = TraceLibrary::instance().trace(id);
        RuuSim base({ 4, 64, BusKind::kPerUnit }, cfg);
        RuuSim wide({ 4, 64, BusKind::kPerUnit,
                      BranchPolicy::kBlocking, 4, 2 },
                    cfg);
        const double r_base = base.run(trace).issueRate();
        const double r_wide = wide.run(trace).issueRate();
        EXPECT_GE(r_wide, r_base * 0.97) << "loop " << id;
    }
}

} // namespace
} // namespace mfusim
