/**
 * @file
 * Steady-state fast path coverage (sim/steady_state.hh).
 *
 *  - Every simulator produces bit-identical results (instructions,
 *    cycles, full stall breakdown) with the fast path on and off, on
 *    every library loop and machine config.
 *  - The audited path matches too (auditing bypasses the fast path,
 *    so its event stream stays complete).
 *  - Crafted aperiodic and too-short traces never extrapolate.
 *  - The long loops actually exercise the fast path (skip > 0).
 *  - PeriodDetector finds the right segment shape on a hand-built
 *    periodic trace and stays silent on aperiodic ones.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/dataflow/period_detector.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/simulator.hh"
#include "mfusim/sim/steady_state.hh"
#include "mfusim/sim/tomasulo_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

/** Scoped on/off switch that restores the previous setting. */
class SteadyGuard
{
  public:
    explicit SteadyGuard(bool on) : prev_(steadyStateEnabled())
    {
        setSteadyStateEnabled(on);
    }
    ~SteadyGuard() { setSteadyStateEnabled(prev_); }

  private:
    bool prev_;
};

/** One instance of each organization at representative settings. */
std::vector<std::unique_ptr<Simulator>>
allSims(const MachineConfig &cfg)
{
    std::vector<std::unique_ptr<Simulator>> sims;
    sims.push_back(std::make_unique<SimpleSim>(cfg));
    sims.push_back(std::make_unique<ScoreboardSim>(
        ScoreboardConfig::crayLike(), cfg));
    sims.push_back(
        std::make_unique<Cdc6600Sim>(Cdc6600Config{}, cfg));
    sims.push_back(std::make_unique<TomasuloSim>(
        TomasuloConfig{ 3, 1, BranchPolicy::kBlocking }, cfg));
    sims.push_back(std::make_unique<MultiIssueSim>(
        MultiIssueConfig{ 4, true, BusKind::kPerUnit, false }, cfg));
    sims.push_back(std::make_unique<RuuSim>(
        RuuConfig{ 2, 20, BusKind::kPerUnit }, cfg));
    return sims;
}

void
expectSameResult(const SimResult &fast, const SimResult &plain,
                 const std::string &what)
{
    EXPECT_EQ(fast.instructions, plain.instructions) << what;
    EXPECT_EQ(fast.cycles, plain.cycles) << what;
    ASSERT_EQ(fast.hasStalls, plain.hasStalls) << what;
    if (plain.hasStalls) {
        EXPECT_EQ(fast.stalls.raw, plain.stalls.raw) << what;
        EXPECT_EQ(fast.stalls.waw, plain.stalls.waw) << what;
        EXPECT_EQ(fast.stalls.structural, plain.stalls.structural)
            << what;
        EXPECT_EQ(fast.stalls.resultBus, plain.stalls.resultBus)
            << what;
        EXPECT_EQ(fast.stalls.branch, plain.stalls.branch) << what;
    }
}

// ---- bit identity: all sims x all loops x all configs -----------------

class SteadyBitIdentity
    : public ::testing::TestWithParam<std::tuple<int, int>>
{};

TEST_P(SteadyBitIdentity, FastPathMatchesPlainPath)
{
    const int loop = std::get<0>(GetParam());
    const MachineConfig cfg =
        standardConfigs()[std::size_t(std::get<1>(GetParam()))];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(loop, cfg);

    auto fastSims = allSims(cfg);
    auto plainSims = allSims(cfg);
    for (std::size_t s = 0; s < fastSims.size(); ++s) {
        SimResult plain;
        {
            SteadyGuard off(false);
            plain = plainSims[s]->run(trace);
            EXPECT_EQ(plain.steadyOpsSkipped, 0u)
                << plainSims[s]->name();
        }
        SimResult fast;
        {
            SteadyGuard on(true);
            fast = fastSims[s]->run(trace);
        }
        expectSameResult(fast, plain, fastSims[s]->name());
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLoopsAllConfigs, SteadyBitIdentity,
    ::testing::Combine(::testing::Range(1, 15),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) + "_" +
            standardConfigs()[std::size_t(std::get<1>(info.param))]
                .name();
    });

// ---- audit path stays complete and identical --------------------------

TEST(SteadyState, AuditedRunMatchesPlainRun)
{
    // Auditing bypasses the fast path (the audit event stream must
    // cover every op), so an audited run with the fast path enabled
    // must still match a plain unaudited baseline.
    SteadyGuard on(true);
    const MachineConfig cfg = configM11BR5();
    for (const int loop : { 6, 7, 13 }) {
        const DecodedTrace &trace =
            TraceLibrary::instance().decoded(loop, cfg);
        auto baseSims = allSims(cfg);
        auto auditSims = allSims(cfg);
        for (std::size_t s = 0; s < baseSims.size(); ++s) {
            const SimResult base = baseSims[s]->run(trace);
            SimResult audited;
            ASSERT_NO_THROW(
                audited = runAudited(*auditSims[s], trace))
                << baseSims[s]->name() << " LL" << loop;
            EXPECT_EQ(audited.cycles, base.cycles)
                << baseSims[s]->name() << " LL" << loop;
            EXPECT_EQ(audited.instructions, base.instructions)
                << baseSims[s]->name() << " LL" << loop;
            EXPECT_EQ(audited.steadyOpsSkipped, 0u)
                << baseSims[s]->name() << " LL" << loop;
        }
    }
}

// ---- the long loops actually take the fast path -----------------------

TEST(SteadyState, LongLoopsSkipOps)
{
    SteadyGuard on(true);
    const MachineConfig cfg = configM11BR5();
    for (const int loop : { 6, 7, 13 }) {
        const DecodedTrace &trace =
            TraceLibrary::instance().decoded(loop, cfg);
        for (auto &sim : allSims(cfg)) {
            const SimResult r = sim->run(trace);
            EXPECT_GT(r.steadyOpsSkipped, 0u)
                << sim->name() << " LL" << loop;
            EXPECT_LT(r.steadyOpsSkipped, r.instructions)
                << sim->name() << " LL" << loop;
        }
    }
}

TEST(SteadyState, DisabledSwitchReportsZeroSkips)
{
    SteadyGuard off(false);
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(7, configM11BR5());
    for (auto &sim : allSims(configM11BR5()))
        EXPECT_EQ(sim->run(trace).steadyOpsSkipped, 0u)
            << sim->name();
}

// ---- crafted traces: aperiodic and short never extrapolate ------------

/** n iterations of a 3-op loop body behind a 2-op preamble:
 *  load S2, fadd S3 = S1 + S2, taken back-edge branch. */
DynTrace
periodicTrace(std::size_t iterations)
{
    DynTrace trace("periodic");
    trace.append(dyn(Op::kSConst, S1));
    trace.append(dyn(Op::kAConst, A1));
    for (std::size_t i = 0; i < iterations; ++i) {
        trace.append(dyn(Op::kLoadS, S2, A1));
        trace.append(dyn(Op::kFAdd, S3, S1, S2));
        trace.append(dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true));
    }
    return trace;
}

/** Runs of fadds with strictly growing lengths between taken
 *  branches: no two inter-branch spans match, so no period exists. */
DynTrace
aperiodicTrace()
{
    DynTrace trace("aperiodic");
    trace.append(dyn(Op::kSConst, S1));
    trace.append(dyn(Op::kSConst, S2));
    for (std::size_t run = 1; run <= 10; ++run) {
        for (std::size_t i = 0; i < run; ++i)
            trace.append(dyn(Op::kFAdd, S3, S1, S2));
        trace.append(dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true));
    }
    return trace;
}

TEST(SteadyState, AperiodicTraceNeverSkips)
{
    SteadyGuard on(true);
    const DynTrace trace = aperiodicTrace();
    for (const MachineConfig &cfg : standardConfigs()) {
        const DecodedTrace decoded(trace, cfg);
        EXPECT_TRUE(detectPeriods(decoded).segments.empty())
            << cfg.name();
        for (auto &sim : allSims(cfg))
            EXPECT_EQ(sim->run(decoded).steadyOpsSkipped, 0u)
                << sim->name() << " " << cfg.name();
    }
}

TEST(SteadyState, ShortTraceNeverSkips)
{
    // Three periods are detected (the minimum is two), but a
    // standalone short segment still cannot skip: confirmation takes
    // two consecutive matches, and by then only the never-skipped
    // final period remains.  Only a previously confirmed *family*
    // could waive the warm-up, and this trace has a single segment.
    SteadyGuard on(true);
    const DynTrace trace = periodicTrace(3);
    const MachineConfig cfg = configM11BR5();
    const DecodedTrace decoded(trace, cfg);
    EXPECT_FALSE(detectPeriods(decoded).segments.empty());
    for (auto &sim : allSims(cfg))
        EXPECT_EQ(sim->run(decoded).steadyOpsSkipped, 0u)
            << sim->name();
}

TEST(SteadyState, CraftedPeriodicTraceIsBitIdentical)
{
    const DynTrace trace = periodicTrace(200);
    for (const MachineConfig &cfg : standardConfigs()) {
        const DecodedTrace decoded(trace, cfg);
        auto fastSims = allSims(cfg);
        auto plainSims = allSims(cfg);
        for (std::size_t s = 0; s < fastSims.size(); ++s) {
            SimResult plain;
            {
                SteadyGuard off(false);
                plain = plainSims[s]->run(decoded);
            }
            SimResult fast;
            {
                SteadyGuard on(true);
                fast = fastSims[s]->run(decoded);
            }
            expectSameResult(fast, plain,
                             fastSims[s]->name() + std::string(" ") +
                                 cfg.name());
        }
    }
}

// ---- period detector unit coverage ------------------------------------

TEST(PeriodDetector, FindsHandBuiltLoop)
{
    const DynTrace trace = periodicTrace(10);
    const DecodedTrace decoded(trace, configM11BR5());
    const TracePeriodicity periods = detectPeriods(decoded);
    ASSERT_EQ(periods.segments.size(), 1u);
    const TraceSegment &seg = periods.segments.front();
    EXPECT_EQ(seg.period, 3u);
    EXPECT_GE(seg.count, 8u);
    EXPECT_LE(seg.end(), decoded.size());
    EXPECT_GE(seg.lookback, seg.period);
    EXPECT_EQ(seg.inserts, 2u); // load + fadd; the branch is not one
    // The preamble constants feed every period (loop-invariant S1
    // and the A1 address), so they are the segment's ancients.
    ASSERT_FALSE(seg.ancients.empty());
    for (const std::uint32_t a : seg.ancients)
        EXPECT_LT(a, seg.base);
}

TEST(PeriodDetector, CoversMostOfLivermoreLoops)
{
    // The long library loops are overwhelmingly periodic; the
    // detector should cover the bulk of their ops.
    for (const int loop : { 6, 7, 13 }) {
        const DecodedTrace &trace =
            TraceLibrary::instance().decoded(loop, configM11BR5());
        const TracePeriodicity periods = detectPeriods(trace);
        ASSERT_FALSE(periods.segments.empty()) << "LL" << loop;
        EXPECT_GT(periods.coveredOps, trace.size() / 2)
            << "LL" << loop;
        std::size_t prevEnd = 0;
        for (const TraceSegment &seg : periods.segments) {
            EXPECT_GE(seg.base, prevEnd) << "LL" << loop;
            EXPECT_GE(seg.count, 2u) << "LL" << loop;
            prevEnd = seg.end();
        }
        EXPECT_LE(prevEnd, trace.size()) << "LL" << loop;
    }
}

TEST(PeriodDetector, HierarchicalLl6CoverageAndFamilies)
{
    // LL6's triangular nest decomposes into many short inner-run
    // segments.  With the two-period minimum the structural coverage
    // clears its old ~78% cap, and every inner run carries the same
    // body — one family — so the steady-state tracker's family trust
    // applies across the whole nest.
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(6, configM11BR5());
    const TracePeriodicity periods = detectPeriods(trace);
    EXPECT_GT(periods.coveredOps, trace.size() * 85 / 100);
    ASSERT_GT(periods.segments.size(), 10u);
    for (const TraceSegment &seg : periods.segments)
        EXPECT_EQ(seg.family, periods.segments.front().family);
    // Family trust turns into real skips: with the fast path on,
    // every simulator closes a large part of LL6 by extrapolation.
    SteadyGuard on(true);
    const MachineConfig cfg = configM11BR5();
    for (auto &sim : allSims(cfg)) {
        EXPECT_GT(sim->run(trace).steadyOpsSkipped,
                  std::uint64_t(trace.size()) / 2)
            << sim->name();
    }
}

} // namespace
} // namespace mfusim
