/**
 * @file
 * Livermore loop validation: every assembly kernel must reproduce
 * its C++ reference result, and trace composition must stay stable.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/harness/trace_library.hh"

namespace mfusim
{
namespace
{

class LivermoreKernel : public ::testing::TestWithParam<int>
{
};

TEST_P(LivermoreKernel, MatchesReferenceImplementation)
{
    const int id = GetParam();
    const Kernel kernel = buildKernel(id);
    const KernelRun run = runKernel(kernel);
    EXPECT_GT(run.checkedCells, 0u);
    EXPECT_EQ(run.mismatches, 0u)
        << "loop " << id << " diverged from reference (max rel err "
        << run.maxRelError << ")";
    EXPECT_LT(run.maxRelError, 1e-9);
}

TEST_P(LivermoreKernel, TraceIsNonTrivial)
{
    const int id = GetParam();
    const DynTrace &trace = TraceLibrary::instance().trace(id);
    const TraceStats stats = trace.stats();
    // Every kernel is a loop of at least dozens of iterations.
    EXPECT_GT(stats.totalOps, 1000u) << "loop " << id;
    EXPECT_GT(stats.branches, 30u) << "loop " << id;
    // Loop-closing branches dominate: almost all branches taken.
    EXPECT_GT(stats.takenBranches * 10, stats.branches * 8)
        << "loop " << id;
    // Livermore kernels are memory-intensive scientific code.
    EXPECT_GT(stats.memoryFraction(), 0.15) << "loop " << id;
    EXPECT_LT(stats.memoryFraction(), 0.70) << "loop " << id;
}

TEST_P(LivermoreKernel, TraceHasFloatingPointWork)
{
    const int id = GetParam();
    const TraceStats stats =
        TraceLibrary::instance().trace(id).stats();
    const std::uint64_t fp =
        stats.perFu[unsigned(FuClass::kFpAdd)] +
        stats.perFu[unsigned(FuClass::kFpMul)] +
        stats.perFu[unsigned(FuClass::kRecip)];
    EXPECT_GT(fp, 100u) << "loop " << id;
}

INSTANTIATE_TEST_SUITE_P(AllLoops, LivermoreKernel,
                         ::testing::Range(1, 15));

TEST(Livermore, SpecsCoverAllFourteenLoops)
{
    const auto &specs = kernelSpecs();
    ASSERT_EQ(specs.size(), 14u);
    for (int i = 0; i < 14; ++i)
        EXPECT_EQ(specs[std::size_t(i)].id, i + 1);
}

TEST(Livermore, PaperLoopClassification)
{
    // "the 5 scalar loops, loops 5, 6, 11, 13 and 14 and the 9
    //  vectorizable loops, loops 1, 2, 3, 4, 7, 8, 9, 10 and 12"
    EXPECT_EQ(scalarLoopIds(), (std::vector<int>{ 5, 6, 11, 13, 14 }));
    EXPECT_EQ(vectorizableLoopIds(),
              (std::vector<int>{ 1, 2, 3, 4, 7, 8, 9, 10, 12 }));
    for (int id : scalarLoopIds())
        EXPECT_FALSE(kernelSpecs()[std::size_t(id - 1)].vectorizable);
    for (int id : vectorizableLoopIds())
        EXPECT_TRUE(kernelSpecs()[std::size_t(id - 1)].vectorizable);
}

TEST(Livermore, PinnedTraceLengths)
{
    // Trace lengths are deterministic; a change here means the
    // benchmark programs changed and all results shift.
    const std::uint64_t expected[15] = {
        0,          // unused
        5607, 3939, 3206, 4843, 3996, 16887, 8200,
        4938, 5010, 4227, 2798, 3203, 7687, 7439,
    };
    for (int id = 1; id <= 14; ++id) {
        EXPECT_EQ(TraceLibrary::instance().trace(id).size(),
                  expected[id])
            << "loop " << id;
    }
}

TEST(Livermore, InvalidIdsRejected)
{
    EXPECT_THROW(buildKernel(0), std::invalid_argument);
    EXPECT_THROW(buildKernel(15), std::invalid_argument);
    EXPECT_THROW(TraceLibrary::instance().trace(0),
                 std::invalid_argument);
    EXPECT_THROW(TraceLibrary::instance().trace(15),
                 std::invalid_argument);
}

TEST(Livermore, TraceLibraryCachesInstances)
{
    const DynTrace &a = TraceLibrary::instance().trace(1);
    const DynTrace &b = TraceLibrary::instance().trace(1);
    EXPECT_EQ(&a, &b);
}

TEST(Livermore, KernelValueIsDeterministicAndInRange)
{
    const double v1 = kernelValue(3, 42, 0.5, 1.5);
    const double v2 = kernelValue(3, 42, 0.5, 1.5);
    EXPECT_EQ(v1, v2);
    for (int id = 1; id <= 14; ++id) {
        for (std::uint64_t i = 0; i < 100; ++i) {
            const double v = kernelValue(id, i, 0.5, 1.5);
            EXPECT_GE(v, 0.5);
            EXPECT_LT(v, 1.5);
        }
    }
    // Different kernels see different data.
    EXPECT_NE(kernelValue(1, 7, 0.0, 1.0), kernelValue(2, 7, 0.0, 1.0));
}

TEST(Livermore, ScalarLoopsHaveLongerDependenceChains)
{
    // The recurrence loops (5, 11) must be dominated by serial
    // floating-point chains: check that their traces contain the
    // carried dependence (same register both read and written by
    // the floating op).
    // In LL5 the fmul result (the new x[i]) must feed the next
    // iteration's fsub with no intervening write to that register.
    const DynTrace &t5 = TraceLibrary::instance().trace(5);
    bool found_recurrence = false;
    RegId pending = kNoReg;     // dst of the last fmul
    for (const DynOp &op : t5.ops()) {
        if (pending != kNoReg &&
            (op.srcA == pending || op.srcB == pending) &&
            op.op == Op::kFSub) {
            found_recurrence = true;
            break;
        }
        if (pending != kNoReg && op.dst == pending)
            pending = kNoReg;   // overwritten: not a carried value
        if (op.op == Op::kFMul)
            pending = op.dst;
    }
    EXPECT_TRUE(found_recurrence);
}

TEST(Livermore, TakenBranchFollowedByTargetInTrace)
{
    // Trace continuity: after a taken backward branch the next trace
    // entry must be the branch target's static instruction.
    const DynTrace &trace = TraceLibrary::instance().trace(1);
    const Kernel kernel = buildKernel(1);
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
        const DynOp &op = trace[i];
        if (isBranch(op.op) && op.taken) {
            const Instruction &inst = kernel.program[op.staticIdx];
            EXPECT_EQ(trace[i + 1].staticIdx, inst.target());
        }
    }
}

} // namespace
} // namespace mfusim
