/**
 * @file
 * Simple Machine golden-timing tests.
 */

#include <gtest/gtest.h>

#include "mfusim/sim/simple_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

TEST(SimpleSim, EmptyTrace)
{
    SimpleSim sim(configM11BR5());
    const SimResult r = sim.run(traceOf({}));
    EXPECT_EQ(r.instructions, 0u);
    EXPECT_EQ(r.cycles, 0u);
    EXPECT_EQ(r.issueRate(), 0.0);
}

TEST(SimpleSim, TimeIsSumOfLatencies)
{
    // sconst (1) + load (11) + fadd (6) = 18 cycles under M11.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kLoadS, S2, A1),
        dyn(Op::kFAdd, S3, S1, S2),
    });
    SimpleSim slow(configM11BR5());
    EXPECT_EQ(slow.run(trace).cycles, 18u);
    SimpleSim fast(configM5BR5());
    EXPECT_EQ(fast.run(trace).cycles, 12u);
}

TEST(SimpleSim, NoOverlapEvenWhenIndependent)
{
    // Two independent loads still serialize completely.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kLoadS, S2, A2),
    });
    SimpleSim sim(configM11BR5());
    EXPECT_EQ(sim.run(trace).cycles, 22u);
}

TEST(SimpleSim, BranchCostsBranchTime)
{
    const DynTrace trace = traceOf({
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
    });
    SimpleSim slow(configM11BR5());
    EXPECT_EQ(slow.run(trace).cycles, 5u);
    SimpleSim fast(configM11BR2());
    EXPECT_EQ(fast.run(trace).cycles, 2u);
}

TEST(SimpleSim, IssueRateComputation)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
    });
    SimpleSim sim(configM11BR5());
    const SimResult r = sim.run(trace);
    EXPECT_EQ(r.instructions, 2u);
    EXPECT_EQ(r.cycles, 2u);
    EXPECT_DOUBLE_EQ(r.issueRate(), 1.0);
}

TEST(SimpleSim, Name)
{
    SimpleSim sim(configM11BR5());
    EXPECT_EQ(sim.name(), "Simple");
}

} // namespace
} // namespace mfusim
