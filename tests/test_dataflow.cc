/**
 * @file
 * Dataflow/resource limit analyzer golden tests.
 */

#include <gtest/gtest.h>

#include "mfusim/dataflow/limits.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

TEST(Dataflow, EmptyTrace)
{
    const LimitResult r = computeLimits(traceOf({}), configM11BR5());
    EXPECT_EQ(r.pseudoRate, 0.0);
    EXPECT_EQ(r.actualRate, 0.0);
}

TEST(Dataflow, IndependentOpsAllStartAtZero)
{
    // Three independent fp ops: critical path = max latency = 7.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S4, S5),
        dyn(Op::kFMul, S2, S4, S5),
        dyn(Op::kFAdd, S3, S6, S7),
    });
    const LimitResult r = computeLimits(trace, configM11BR5());
    EXPECT_EQ(r.pseudoCycles, 7u);
    EXPECT_DOUBLE_EQ(r.pseudoRate, 3.0 / 7.0);
}

TEST(Dataflow, ChainAddsLatencies)
{
    // load -> fadd chain: 11 + 6 = 17.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
        dyn(Op::kSConst, S3),
    });
    const LimitResult r = computeLimits(trace, configM11BR5());
    EXPECT_EQ(r.pseudoCycles, 17u);
    // Resource: memory 1 op + 11 = 12; fpadd 1 + 6 = 7 -> 12.
    EXPECT_EQ(r.resourceCycles, 12u);
    // Actual is min rate = pseudo here (3/17 < 3/12).
    EXPECT_DOUBLE_EQ(r.actualRate, 3.0 / 17.0);
}

TEST(Dataflow, ResourceLimitBindsWideCode)
{
    // Twelve independent fmuls: pseudo = 7 cycles, resource =
    // 12 + 7 = 19; the resource limit binds (the paper's example).
    DynTrace trace("muls");
    for (int i = 0; i < 12; ++i)
        trace.append(dyn(Op::kFMul, regS(unsigned(i) % 4),
                         S5, S6));
    // NB: reusing dst registers is fine -- pure dataflow renames.
    const LimitResult r = computeLimits(trace, configM11BR5());
    EXPECT_EQ(r.pseudoCycles, 7u);
    EXPECT_EQ(r.resourceCycles, 19u);
    EXPECT_DOUBLE_EQ(r.actualRate, 12.0 / 19.0);
}

TEST(Dataflow, WawDoesNotConstrainPureDataflow)
{
    // load S1 then sconst S1: renamed, so the sconst finishes at 1.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
    });
    const LimitResult pure = computeLimits(trace, configM11BR5(),
                                           false);
    // Critical path: the load's 11 (smovs reads the *renamed* S1:
    // 1 + 1 = 2).
    EXPECT_EQ(pure.pseudoCycles, 11u);
}

TEST(Dataflow, SerialWawForcesInOrderCompletion)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
    });
    const LimitResult serial = computeLimits(trace, configM11BR5(),
                                             true);
    // sconst may finish no earlier than the load (11); the smovs
    // reads it then: 11 + 1 = 12.
    EXPECT_EQ(serial.pseudoCycles, 12u);
}

TEST(Dataflow, SerialNeverBeatsPure)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S1, S1, S1),
        dyn(Op::kFMul, S1, S1, S1),
        dyn(Op::kSConst, S1),
    });
    for (const MachineConfig &cfg : standardConfigs()) {
        const LimitResult pure = computeLimits(trace, cfg, false);
        const LimitResult serial = computeLimits(trace, cfg, true);
        EXPECT_LE(serial.pseudoRate, pure.pseudoRate) << cfg.name();
        EXPECT_LE(serial.actualRate, pure.actualRate) << cfg.name();
    }
}

TEST(Dataflow, BranchGatesLaterInstructions)
{
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kSConst, S1),
    });
    // aconst done 1; branch resolves 1 + 5 = 6; sconst done 7.
    const LimitResult r5 = computeLimits(trace, configM11BR5());
    EXPECT_EQ(r5.pseudoCycles, 7u);
    // Fast branch: resolves 3; sconst done 4.
    const LimitResult r2 = computeLimits(trace, configM11BR2());
    EXPECT_EQ(r2.pseudoCycles, 4u);
}

TEST(Dataflow, BranchGatingSerializesIterations)
{
    // Two "iterations" of [aconst A0, branch]: the second iteration
    // cannot start before the first branch resolves.
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, false),
    });
    const LimitResult r = computeLimits(trace, configM11BR5());
    // Iter 1: const done 1, branch resolves 6; iter 2: const starts
    // 6 done 7, branch resolves 12.
    EXPECT_EQ(r.pseudoCycles, 12u);
}

TEST(Dataflow, MemoryLatencyOffCriticalPathIsInvisible)
{
    // The paper's Table 2 shows identical pseudo-dataflow limits for
    // M11 and M5: loads start at iteration gates and are hidden
    // under longer fp chains.  Reproduce in miniature: a load and a
    // 3-op fp chain in parallel (6*3 = 18 > 11).
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S3, S4),
        dyn(Op::kFAdd, S5, S2, S2),
        dyn(Op::kFAdd, S6, S5, S5),
        dyn(Op::kFAdd, S7, S6, S1),     // joins both paths
    });
    const LimitResult m11 = computeLimits(trace, configM11BR5());
    const LimitResult m5 = computeLimits(trace, configM5BR5());
    EXPECT_EQ(m11.pseudoCycles, 24u);   // 18 + 6
    EXPECT_EQ(m5.pseudoCycles, 24u);
}

TEST(Dataflow, StoresHaveNoDependents)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kStoreS, kNoReg, A1, S1),
    });
    const LimitResult r = computeLimits(trace, configM11BR5());
    // Store starts at 1, completes at 12.
    EXPECT_EQ(r.pseudoCycles, 12u);
}

} // namespace
} // namespace mfusim
