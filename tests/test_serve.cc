/**
 * @file
 * The serve daemon, end to end: JSON layer, HTTP parsing, and a real
 * HttpServer+SimService on an ephemeral port driven through raw
 * POSIX sockets — simulate/sweep round trips bit-identical to direct
 * library calls, result-cache visibility, admission control (429),
 * oversized bodies (413), deadlines (503), malformed input (400),
 * concurrent clients, and graceful drain.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"
#include "mfusim/harness/spec_parse.hh"
#include "mfusim/obs/req_trace.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/serve/http.hh"
#include "mfusim/serve/json.hh"
#include "mfusim/serve/result_cache.hh"
#include "mfusim/serve/server.hh"
#include "mfusim/serve/sim_service.hh"

// Tests that need a probe to actually fire cannot run when the
// probes are compiled down to constant false.
#ifdef MFUSIM_NO_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() \
    GTEST_SKIP() << "built with MFUSIM_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#endif

namespace mfusim
{
namespace
{

// ----------------------------------------------------------------- JSON

TEST(Json, ParseRoundTrip)
{
    const Json v = parseJson(
        R"({"a": 1, "b": [true, null, "x\n"], "c": {"d": 2.5}})");
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("a")->asNumber(), 1.0);
    EXPECT_TRUE(v.find("b")->items()[0].asBool());
    EXPECT_TRUE(v.find("b")->items()[1].isNull());
    EXPECT_EQ(v.find("b")->items()[2].asString(), "x\n");
    EXPECT_EQ(v.find("c")->find("d")->asNumber(), 2.5);
    // Dump re-parses to the same structure.
    const Json again = parseJson(v.dump());
    EXPECT_EQ(again.dump(), v.dump());
}

TEST(Json, MalformedInputsThrow400)
{
    for (const char *bad :
         { "", "{", "[1,", "{\"a\" 1}", "tru", "{\"a\":01x}",
           "\"unterminated", "{\"a\":1} trailing", "[1 2]" }) {
        try {
            parseJson(bad);
            FAIL() << "no throw for: " << bad;
        } catch (const ServeError &e) {
            EXPECT_EQ(e.httpStatus(), 400) << bad;
        }
    }
}

TEST(Json, DepthCapStopsHostileNesting)
{
    std::string hostile(2000, '[');
    hostile += std::string(2000, ']');
    EXPECT_THROW(parseJson(hostile), ServeError);
}

TEST(Json, DiagnosticNamesLineAndColumn)
{
    try {
        parseJson("{\n  \"a\": bogus\n}");
        FAIL();
    } catch (const ServeError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
    }
}

// ----------------------------------------------------------------- HTTP

TEST(HttpParse, RequestHead)
{
    HttpRequest req;
    std::string error;
    ASSERT_TRUE(parseRequestHead("POST /v1/simulate?x=1 HTTP/1.1\r\n"
                                 "Host: localhost\r\n"
                                 "Content-Type: application/json\r\n",
                                 &req, &error))
        << error;
    EXPECT_EQ(req.method, "POST");
    EXPECT_EQ(req.target, "/v1/simulate?x=1");
    EXPECT_EQ(req.path, "/v1/simulate");
    EXPECT_EQ(req.header("content-type"), "application/json");
    EXPECT_EQ(req.header("CONTENT-TYPE"), "application/json");
    EXPECT_TRUE(req.keepAlive());
}

TEST(HttpParse, RejectsGarbage)
{
    HttpRequest req;
    std::string error;
    EXPECT_FALSE(parseRequestHead("", &req, &error));
    EXPECT_FALSE(parseRequestHead("GETHTTP/1.1", &req, &error));
    EXPECT_FALSE(parseRequestHead("GET / SPDY/3", &req, &error));
    EXPECT_FALSE(
        parseRequestHead("GET / HTTP/1.1\r\nbadheader\r\n", &req,
                         &error));
}

TEST(HttpParse, ConnectionClose)
{
    HttpRequest req;
    std::string error;
    ASSERT_TRUE(parseRequestHead(
        "GET / HTTP/1.1\r\nConnection: close\r\n", &req, &error));
    EXPECT_FALSE(req.keepAlive());
}

TEST(HttpSerialize, ResponseWireFormat)
{
    HttpResponse resp(200, "application/json", "{}");
    const std::string wire = resp.serialize(true);
    EXPECT_NE(wire.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Content-Length: 2\r\n"), std::string::npos);
    EXPECT_NE(wire.find("Connection: keep-alive\r\n"),
              std::string::npos);
    EXPECT_EQ(wire.substr(wire.size() - 2), "{}");
}

// --------------------------------------------------- raw-socket client

/** Connect to 127.0.0.1:port; returns the fd (closes in dtor). */
class ClientSocket
{
  public:
    explicit ClientSocket(std::uint16_t port)
    {
        fd_ = socket(AF_INET, SOCK_STREAM, 0);
        struct sockaddr_in addr;
        std::memset(&addr, 0, sizeof(addr));
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        if (connect(fd_, reinterpret_cast<struct sockaddr *>(&addr),
                    sizeof(addr)) != 0) {
            close(fd_);
            fd_ = -1;
        }
    }
    ~ClientSocket()
    {
        if (fd_ >= 0)
            close(fd_);
    }
    int fd() const { return fd_; }
    bool ok() const { return fd_ >= 0; }

    bool sendAll(const std::string &data)
    {
        return writeAll(fd_, data);
    }

    /** Read one response (headers + Content-Length body). */
    std::string
    readResponse()
    {
        std::string buffer;
        char chunk[4096];
        std::size_t headEnd = std::string::npos;
        while (headEnd == std::string::npos) {
            const ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
            if (got <= 0)
                return buffer;
            buffer.append(chunk, std::size_t(got));
            headEnd = buffer.find("\r\n\r\n");
        }
        // Parse Content-Length to know when the body is complete.
        std::size_t contentLength = 0;
        const std::size_t cl = buffer.find("Content-Length: ");
        if (cl != std::string::npos && cl < headEnd)
            contentLength = std::size_t(
                std::strtoull(buffer.c_str() + cl + 16, nullptr, 10));
        while (buffer.size() < headEnd + 4 + contentLength) {
            const ssize_t got = recv(fd_, chunk, sizeof(chunk), 0);
            if (got <= 0)
                break;
            buffer.append(chunk, std::size_t(got));
        }
        return buffer;
    }

  private:
    int fd_ = -1;
};

struct Response
{
    int status = 0;
    std::string body;
    std::string raw;
};

Response
parseResponse(const std::string &wire)
{
    Response r;
    r.raw = wire;
    if (wire.rfind("HTTP/1.1 ", 0) == 0)
        r.status = std::atoi(wire.c_str() + 9);
    const std::size_t headEnd = wire.find("\r\n\r\n");
    if (headEnd != std::string::npos)
        r.body = wire.substr(headEnd + 4);
    return r;
}

/** One-shot request against a local server. */
Response
roundTrip(std::uint16_t port, const std::string &method,
          const std::string &path, const std::string &body = "",
          const std::string &extraHeaders = "")
{
    ClientSocket sock(port);
    if (!sock.ok())
        return Response{};
    std::string request = method + " " + path + " HTTP/1.1\r\n" +
        "Host: localhost\r\nConnection: close\r\n" + extraHeaders;
    if (!body.empty())
        request +=
            "Content-Length: " + std::to_string(body.size()) + "\r\n";
    request += "\r\n" + body;
    sock.sendAll(request);
    return parseResponse(sock.readResponse());
}

// ------------------------------------------------------- e2e fixture

/** An HttpServer+SimService on an ephemeral port, torn down after. */
class ServeE2E : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ResultCache::instance().clear();
        ServeOptions opts;
        opts.port = 0;          // ephemeral: tests never collide
        opts.workers = 4;
        opts.deadlineMs = 10000;
        opts.maxBodyBytes = 64 * 1024;
        service_ = std::make_unique<SimService>(
            SimServiceOptions{ "test", 64 });
        server_ = std::make_unique<HttpServer>(
            opts, [this](const HttpRequest &request,
                         unsigned budgetMs) {
                return service_->handle(request, budgetMs);
            });
        service_->setServer(server_.get());
        // The production wiring: cache hits answered on the reactor.
        server_->setFastHandler(
            [this](const HttpRequest &request, HttpResponse *out) {
                return service_->tryFastAnswer(request, out);
            });
        server_->start();
        ASSERT_NE(server_->port(), 0);
    }

    void
    TearDown() override
    {
        server_->stop();
        ResultCache::instance().clear();
    }

    std::uint16_t port() const { return server_->port(); }

    std::unique_ptr<SimService> service_;
    std::unique_ptr<HttpServer> server_;
};

TEST_F(ServeE2E, Healthz)
{
    const Response r = roundTrip(port(), "GET", "/healthz");
    EXPECT_EQ(r.status, 200);
    const Json body = parseJson(r.body);
    EXPECT_EQ(body.find("status")->asString(), "ok");
    EXPECT_EQ(body.find("version")->asString(), "test");
}

TEST_F(ServeE2E, SimulateBitIdenticalToDirectRunAllMachines)
{
    // The acceptance criterion: POST /v1/simulate responses must be
    // bit-identical to the equivalent direct invocation for all six
    // simulator families.
    const std::vector<std::string> machines{
        "simple",   "cray",  "cdc",
        "tomasulo", "seq:2", "ruu:4:50",
    };
    const std::vector<int> loops{ 1, 5, 9, 14 };
    const MachineConfig cfg = configM11BR2();

    for (const std::string &machine : machines) {
        for (const int loop : loops) {
            const Response r = roundTrip(
                port(), "POST", "/v1/simulate",
                "{\"loop\": " + std::to_string(loop) +
                    ", \"machine\": \"" + machine +
                    "\", \"config\": \"M11BR2\"}");
            ASSERT_EQ(r.status, 200)
                << machine << " LL" << loop << ": " << r.body;
            const Json body = parseJson(r.body);

            auto sim = parseMachineSpec(machine, cfg);
            const SimResult direct = sim->run(
                TraceLibrary::instance().decoded(loop, cfg));
            EXPECT_EQ(body.find("instructions")->asNumber(),
                      double(direct.instructions))
                << machine << " LL" << loop;
            EXPECT_EQ(body.find("cycles")->asNumber(),
                      double(direct.cycles))
                << machine << " LL" << loop;
            EXPECT_EQ(body.find("rate")->asNumber(),
                      direct.issueRate())
                << machine << " LL" << loop;
            EXPECT_EQ(body.find("machine")->asString(), sim->name());
            EXPECT_EQ(body.find("schema")->asString(),
                      "mfusim-serve-v1");
        }
    }
}

TEST_F(ServeE2E, RepeatedRequestServedFromCacheAndCounted)
{
    const std::string request =
        R"({"loop": 5, "machine": "cray", "config": "M5BR2"})";
    const Response first =
        roundTrip(port(), "POST", "/v1/simulate", request);
    ASSERT_EQ(first.status, 200) << first.body;
    EXPECT_FALSE(parseJson(first.body).find("cached")->asBool());

    const Response second =
        roundTrip(port(), "POST", "/v1/simulate", request);
    ASSERT_EQ(second.status, 200);
    const Json secondBody = parseJson(second.body);
    EXPECT_TRUE(secondBody.find("cached")->asBool());
    EXPECT_EQ(secondBody.find("cycles")->asNumber(),
              parseJson(first.body).find("cycles")->asNumber());

    // The hit is observable through /metrics (the acceptance
    // criterion's "hit counter observable" clause).
    const Response metrics = roundTrip(port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    // The sample line (not the "# TYPE" comment) carries the labels.
    const std::size_t at =
        metrics.body.find("mfusim_result_cache_hits_total{");
    ASSERT_NE(at, std::string::npos) << metrics.body;
    const std::string line = metrics.body.substr(
        at, metrics.body.find('\n', at) - at);
    EXPECT_EQ(line.substr(line.rfind(' ') + 1), "1") << line;
}

TEST_F(ServeE2E, UnrolledAndVectorLoopSpecsWork)
{
    for (const char *spec : { "\"1x4\"", "\"7v\"" }) {
        const Response r = roundTrip(
            port(), "POST", "/v1/simulate",
            std::string("{\"loop\": ") + spec +
                ", \"machine\": \"cray\"}");
        EXPECT_EQ(r.status, 200) << spec << ": " << r.body;
    }
}

TEST_F(ServeE2E, SweepMatchesDirectParallelRates)
{
    const Response r = roundTrip(
        port(), "POST", "/v1/sweep",
        R"({"machine": "seq:2", "config": "M5BR5",
            "loops": [1, 2, 3, 8, 12]})");
    ASSERT_EQ(r.status, 200) << r.body;
    const Json body = parseJson(r.body);
    const auto &rows = body.find("results")->items();
    ASSERT_EQ(rows.size(), 5u);

    const MachineConfig cfg = configM5BR5();
    const SimFactory factory = [](const MachineConfig &c) {
        return parseMachineSpec("seq:2", c);
    };
    const std::vector<double> direct = parallelPerLoopRates(
        factory, { 1, 2, 3, 8, 12 }, cfg);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(rows[i].find("rate")->asNumber(), direct[i])
            << "row " << i;
}

TEST_F(ServeE2E, BatchedSweepManyMachinesOneRequest)
{
    // A 'machine' list sweeps every variant in one request: the
    // variants advance over each loop through the batched lockstep
    // kernel and must reproduce the per-variant scalar sweep.
    const Response r = roundTrip(
        port(), "POST", "/v1/sweep",
        R"({"machine": ["seq:2", "seq:4", "seq:4,1bus"],
            "config": "M5BR5", "loops": [1, 3, 12]})");
    ASSERT_EQ(r.status, 200) << r.body;
    const Json body = parseJson(r.body);
    ASSERT_NE(body.find("batch_size"), nullptr);
    EXPECT_EQ(body.find("batch_size")->asNumber(), 3.0);
    ASSERT_NE(body.find("machines"), nullptr);
    const auto &machines = body.find("machines")->items();
    ASSERT_EQ(machines.size(), 3u);

    const MachineConfig cfg = configM5BR5();
    const std::vector<std::string> specs = { "seq:2", "seq:4",
                                             "seq:4,1bus" };
    for (std::size_t v = 0; v < specs.size(); ++v) {
        const SimFactory factory = [&](const MachineConfig &c) {
            return parseMachineSpec(specs[v], c);
        };
        const std::vector<double> direct =
            parallelPerLoopRates(factory, { 1, 3, 12 }, cfg);
        const auto &rows = machines[v].find("results")->items();
        ASSERT_EQ(rows.size(), 3u) << specs[v];
        for (std::size_t i = 0; i < rows.size(); ++i)
            EXPECT_EQ(rows[i].find("rate")->asNumber(), direct[i])
                << specs[v] << " row " << i;
    }

    // The batched kernel's telemetry reaches /metrics.
    const Response metrics = roundTrip(port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    EXPECT_NE(metrics.body.find("mfusim_sweep_batch_size_total"),
              std::string::npos)
        << metrics.body;
    EXPECT_NE(
        metrics.body.find("mfusim_sweep_batch_lockstep_lanes_total"),
        std::string::npos)
        << metrics.body;
}

TEST_F(ServeE2E, BadInputsMapToFourHundreds)
{
    // Malformed JSON.
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/simulate", "{nope")
                  .status,
              400);
    // Unknown machine / config / loop.
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/simulate",
                        R"({"loop": 5, "machine": "pdp11"})")
                  .status,
              400);
    EXPECT_EQ(roundTrip(
                  port(), "POST", "/v1/simulate",
                  R"({"loop": 5, "machine": "cray", "config": "Z"})")
                  .status,
              400);
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/simulate",
                        R"({"loop": 99, "machine": "cray"})")
                  .status,
              400);
    // Missing fields.
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/simulate",
                        R"({"machine": "cray"})")
                  .status,
              400);
    // Sweep with a bad loop list.
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/sweep",
                        R"({"machine": "cray", "loops": [1, 99]})")
                  .status,
              400);
    EXPECT_EQ(roundTrip(port(), "POST", "/v1/sweep",
                        R"({"machine": "cray", "loops": []})")
                  .status,
              400);
    // Unknown route and wrong method.
    EXPECT_EQ(roundTrip(port(), "GET", "/nope").status, 404);
    EXPECT_EQ(roundTrip(port(), "GET", "/v1/simulate").status, 405);
    const Response errBody =
        roundTrip(port(), "POST", "/v1/simulate", "{nope");
    const Json err = parseJson(errBody.body);
    EXPECT_EQ(err.find("status")->asNumber(), 400.0);
    EXPECT_FALSE(err.find("error")->asString().empty());
}

TEST_F(ServeE2E, OversizedBodyIs413)
{
    // 64 KiB limit in the fixture; send a Content-Length beyond it.
    const std::string body(70 * 1024, 'x');
    const Response r =
        roundTrip(port(), "POST", "/v1/simulate", body);
    EXPECT_EQ(r.status, 413);
}

TEST_F(ServeE2E, DeadlineZeroIs503)
{
    const Response r = roundTrip(
        port(), "POST", "/v1/simulate",
        R"({"loop": 5, "machine": "cray"})", "X-Deadline-Ms: 0\r\n");
    EXPECT_EQ(r.status, 503);
}

TEST_F(ServeE2E, ConcurrentClientsAllSucceedAndAgree)
{
    constexpr int kClients = 8;
    std::vector<std::thread> threads;
    std::vector<Response> responses(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([this, c, &responses] {
            responses[std::size_t(c)] = roundTrip(
                port(), "POST", "/v1/simulate",
                R"({"loop": 7, "machine": "ooo:4", "config": "M11BR5"})");
        });
    }
    for (std::thread &t : threads)
        t.join();
    ASSERT_EQ(responses[0].status, 200) << responses[0].body;
    const double cycles =
        parseJson(responses[0].body).find("cycles")->asNumber();
    for (int c = 1; c < kClients; ++c) {
        ASSERT_EQ(responses[std::size_t(c)].status, 200);
        EXPECT_EQ(parseJson(responses[std::size_t(c)].body)
                      .find("cycles")
                      ->asNumber(),
                  cycles)
            << "client " << c;
    }
}

TEST_F(ServeE2E, KeepAliveServesSequentialRequests)
{
    ClientSocket sock(port());
    ASSERT_TRUE(sock.ok());
    const std::string body = R"({"loop": 2, "machine": "simple"})";
    for (int i = 0; i < 3; ++i) {
        std::string request =
            "POST /v1/simulate HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: " + std::to_string(body.size()) +
            "\r\n\r\n" + body;
        ASSERT_TRUE(sock.sendAll(request));
        const Response r = parseResponse(sock.readResponse());
        EXPECT_EQ(r.status, 200) << "request " << i;
    }
}

TEST_F(ServeE2E, MetricsExposePrometheusFamilies)
{
    roundTrip(port(), "POST", "/v1/simulate",
              R"({"loop": 1, "machine": "simple"})");
    const Response r = roundTrip(port(), "GET", "/metrics");
    ASSERT_EQ(r.status, 200);
    for (const char *family :
         { "# TYPE mfusim_http_requests_total counter",
           "mfusim_http_simulate_requests_total",
           "mfusim_http_simulate_latency_ms_bucket",
           "mfusim_http_connections_accepted_total",
           "mfusim_http_queue_depth",
           "mfusim_result_cache_misses_total" }) {
        EXPECT_NE(r.body.find(family), std::string::npos)
            << "missing: " << family << "\n" << r.body;
    }
}

TEST_F(ServeE2E, ReactorFastPathServesCacheHitsBitIdentically)
{
    const std::string body = R"({"loop": 3, "machine": "cray"})";
    // First request misses the cache and computes on a worker.
    const Response first =
        roundTrip(port(), "POST", "/v1/simulate", body);
    ASSERT_EQ(first.status, 200);
    EXPECT_EQ(server_->stats().fastpath, 0u);

    // Repeats are answered inline by the reactor from the cache.
    const Response second =
        roundTrip(port(), "POST", "/v1/simulate", body);
    const Response third =
        roundTrip(port(), "POST", "/v1/simulate", body);
    ASSERT_EQ(second.status, 200);
    EXPECT_EQ(second.body, third.body);
    EXPECT_GE(server_->stats().fastpath, 2u);

    // The inline answer differs from the computed one only in the
    // cached flag; every simulation field is bit-identical.
    const Json a = parseJson(first.body);
    const Json b = parseJson(second.body);
    EXPECT_FALSE(a.find("cached")->asBool());
    EXPECT_TRUE(b.find("cached")->asBool());
    EXPECT_EQ(a.find("cycles")->asNumber(),
              b.find("cycles")->asNumber());
    EXPECT_EQ(a.find("instructions")->asNumber(),
              b.find("instructions")->asNumber());
    EXPECT_EQ(a.find("rate_str")->asString(),
              b.find("rate_str")->asString());
}

// ------------------------------------------- transport-level behaviour

TEST(HttpFastPath, FastHandlerAnswersWhileWorkersAreWedged)
{
    // One worker, wedged on a slow request: a fast-path route must
    // still answer from the reactor thread, and must not consume a
    // queue slot or a worker.
    std::atomic<bool> release{ false };
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.idleTimeoutMs = 200;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        while (!release.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        return HttpResponse(200, "text/plain", "slow");
    });
    server.setFastHandler(
        [](const HttpRequest &request, HttpResponse *out) {
            if (request.path != "/fast")
                return false;
            *out = HttpResponse(200, "text/plain", "inline");
            return true;
        });
    server.start();

    ClientSocket slow(server.port());
    ASSERT_TRUE(slow.ok());
    slow.sendAll("GET /slow HTTP/1.1\r\nHost: x\r\n\r\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    ClientSocket fast(server.port());
    ASSERT_TRUE(fast.ok());
    fast.sendAll("GET /fast HTTP/1.1\r\nHost: x\r\n"
                 "Connection: close\r\n\r\n");
    const Response r = parseResponse(fast.readResponse());
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "inline");
    EXPECT_EQ(server.stats().fastpath, 1u);

    release.store(true);
    const Response s = parseResponse(slow.readResponse());
    EXPECT_EQ(s.status, 200);
    server.stop();
}

TEST(HttpServerAdmission, QueueOverflowAnswers429)
{
    // A deliberately slow handler with one worker and a queue depth
    // of 1: the third concurrent REQUEST cannot be admitted and must
    // get an immediate 429 with Retry-After.  Admission is enforced
    // at the dispatch edge — the reactor answers from its own thread
    // while the sole worker is busy — and the rejected connection
    // survives the 429 (it is the retry vehicle).
    std::atomic<bool> release{ false };
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.queueDepth = 1;
    // Short idle timeout so draining the parked keep-alive
    // connections at stop() does not stall the test suite.
    opts.idleTimeoutMs = 200;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        while (!release.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        return HttpResponse(200, "text/plain", "done");
    });
    server.start();

    // First request: admitted, occupies the worker.
    ClientSocket busy(server.port());
    ASSERT_TRUE(busy.ok());
    busy.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    // Second request: admitted, parks in the compute queue.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ClientSocket parked(server.port());
    ASSERT_TRUE(parked.ok());
    parked.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Third request: the queue is full — 429, immediately, while
    // the worker is still busy.
    ClientSocket rejected(server.port());
    ASSERT_TRUE(rejected.ok());
    rejected.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    const Response r = parseResponse(rejected.readResponse());
    EXPECT_EQ(r.status, 429);
    // Retry-After scales with the backlog: 1 queued + 1 in flight
    // over 1 worker -> 1 + 2/1 = 3 seconds.
    EXPECT_NE(r.raw.find("Retry-After: 3"), std::string::npos)
        << r.raw;

    release.store(true);
    const Response ok = parseResponse(busy.readResponse());
    EXPECT_EQ(ok.status, 200);
    server.stop();
    EXPECT_GE(server.stats().rejected, 1u);
}

TEST(HttpServerAdmission, RetryAfterGrowsWithQueueDepth)
{
    // Same overload shape but a deeper queue: the advertised backoff
    // must reflect the longer backlog, not a constant.
    std::atomic<bool> release{ false };
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.queueDepth = 4;
    opts.idleTimeoutMs = 200;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        while (!release.load())
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        return HttpResponse(200, "text/plain", "done");
    });
    server.start();

    ClientSocket busy(server.port());
    ASSERT_TRUE(busy.ok());
    busy.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    std::vector<std::unique_ptr<ClientSocket>> parked;
    for (unsigned i = 0; i < opts.queueDepth; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        parked.push_back(
            std::make_unique<ClientSocket>(server.port()));
        ASSERT_TRUE(parked.back()->ok());
        parked.back()->sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // 4 queued + 1 in flight over 1 worker -> 1 + 5/1 = 6 seconds.
    ClientSocket rejected(server.port());
    ASSERT_TRUE(rejected.ok());
    rejected.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    const Response r = parseResponse(rejected.readResponse());
    EXPECT_EQ(r.status, 429);
    EXPECT_NE(r.raw.find("Retry-After: 6"), std::string::npos)
        << r.raw;

    release.store(true);
    parseResponse(busy.readResponse());
    server.stop();
}

// --------------------------------------------------- fault injection

/** Tests that arm faults must always disarm, even on early exit. */
class FaultyTransport : public ::testing::Test
{
  protected:
    void SetUp() override { FaultRegistry::instance().reset(); }
    void TearDown() override { FaultRegistry::instance().reset(); }
};

TEST_F(FaultyTransport, ShortReadsStillServeCorrectResponses)
{
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [](const HttpRequest &req, unsigned) {
        return HttpResponse(200, "text/plain", "echo:" + req.body);
    });
    server.start();

    // Every server-side recv() returns one byte: the read loop must
    // reassemble the request byte by byte without corruption.
    FaultRegistry::instance().configure("http.read:short");
    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    sock.sendAll("POST /x HTTP/1.1\r\nHost: x\r\n"
                 "Content-Length: 5\r\nConnection: close\r\n\r\n"
                 "hello");
    const Response r = parseResponse(sock.readResponse());
    FaultRegistry::instance().reset();
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "echo:hello");
    server.stop();
}

TEST_F(FaultyTransport, ShortWritesStillDeliverFullResponses)
{
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    const std::string big(8 * 1024, 'y');
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", big);
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    // Arm after the client send: ClientSocket::sendAll goes through
    // the same writeAll and would slow the test pointlessly.
    sock.sendAll(
        "GET /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    FaultRegistry::instance().configure("http.write:short:times=64");
    const Response r = parseResponse(sock.readResponse());
    FaultRegistry::instance().reset();
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, big);
    server.stop();
}

TEST_F(FaultyTransport, ReadFailureDropsConnectionNotServer)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "ok");
    });
    server.start();

    FaultRegistry::instance().configure("http.read:fail:once");
    ClientSocket dropped(server.port());
    ASSERT_TRUE(dropped.ok());
    dropped.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(parseResponse(dropped.readResponse()).status, 0);

    // The next connection is served normally.
    ClientSocket fine(server.port());
    ASSERT_TRUE(fine.ok());
    fine.sendAll(
        "GET /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(parseResponse(fine.readResponse()).status, 200);
    server.stop();
}

TEST_F(FaultyTransport, DyingWorkerIsRespawned)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;          // the one worker dies; a respawn must serve
    opts.idleTimeoutMs = 200;
    HttpServer server(opts, [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "alive");
    });
    server.start();

    FaultRegistry::instance().configure("worker.die:once");
    ClientSocket killed(server.port());
    ASSERT_TRUE(killed.ok());
    killed.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_EQ(parseResponse(killed.readResponse()).status, 0);
    FaultRegistry::instance().reset();

    ClientSocket next(server.port());
    ASSERT_TRUE(next.ok());
    next.sendAll(
        "GET /x HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n");
    EXPECT_EQ(parseResponse(next.readResponse()).status, 200);
    server.stop();
    EXPECT_EQ(server.stats().workerDeaths, 1u);
}

TEST_F(FaultyTransport, InjectedOverrunAnswers503)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    HttpServer server(opts, [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "fast");
    });
    server.start();

    FaultRegistry::instance().configure("worker.overrun:once");
    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    sock.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n"
                 "X-Deadline-Ms: 50\r\nConnection: close\r\n\r\n");
    const Response r = parseResponse(sock.readResponse());
    FaultRegistry::instance().reset();
    EXPECT_EQ(r.status, 503);
    EXPECT_NE(r.body.find("overrun"), std::string::npos);
    server.stop();
}

TEST(HttpServerHardening, SlowlorisHeaderDribbleIsCutOff)
{
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.deadlineMs = 30000;    // the request budget would allow it...
    opts.headerTimeoutMs = 250; // ...the header clock does not
    HttpServer server(opts, [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "ok");
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    sock.sendAll("GET /x HT");    // never finishes the head
    const auto start = std::chrono::steady_clock::now();
    const Response r = parseResponse(sock.readResponse());
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_EQ(r.status, 408);
    // Cut off by the header clock, far inside the 30 s budget.
    EXPECT_LT(elapsed.count(), 5000);
    server.stop();
}

TEST(HttpServerAdmission, GracefulDrainFinishesInFlightRequest)
{
    std::atomic<bool> entered{ false };
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        entered.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        return HttpResponse(200, "text/plain", "drained fine");
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    sock.sendAll("GET /x HTTP/1.1\r\nHost: x\r\n\r\n");
    while (!entered.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));

    // stop() during the in-flight request: it must complete, not be
    // dropped.
    std::thread stopper([&] { server.stop(); });
    const Response r = parseResponse(sock.readResponse());
    stopper.join();
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "drained fine");
    EXPECT_FALSE(server.running());
}

TEST(HttpServerAdmission, EphemeralPortsAreIndependent)
{
    const auto handler = [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "ok");
    };
    ServeOptions opts;
    opts.port = 0;
    HttpServer a(opts, handler), b(opts, handler);
    a.start();
    b.start();
    EXPECT_NE(a.port(), 0);
    EXPECT_NE(b.port(), 0);
    EXPECT_NE(a.port(), b.port());
    EXPECT_EQ(roundTrip(a.port(), "GET", "/").status, 200);
    EXPECT_EQ(roundTrip(b.port(), "GET", "/").status, 200);
    a.stop();
    b.stop();
}

// ----------------------- HTTP/1.1 pipelining & event-driven capacity

/** Read exactly @p count responses off one socket, in arrival order. */
std::vector<Response>
readPipelinedResponses(int fd, std::size_t count)
{
    std::vector<Response> out;
    std::string buffer;
    char chunk[8192];
    for (;;) {
        // Split complete responses off the front of the buffer.
        for (;;) {
            const std::size_t headEnd = buffer.find("\r\n\r\n");
            if (headEnd == std::string::npos)
                break;
            std::size_t contentLength = 0;
            const std::size_t cl = buffer.find("Content-Length: ");
            if (cl != std::string::npos && cl < headEnd)
                contentLength = std::size_t(std::strtoull(
                    buffer.c_str() + cl + 16, nullptr, 10));
            const std::size_t total = headEnd + 4 + contentLength;
            if (buffer.size() < total)
                break;
            out.push_back(parseResponse(buffer.substr(0, total)));
            buffer.erase(0, total);
            if (out.size() == count)
                return out;
        }
        const ssize_t got = recv(fd, chunk, sizeof(chunk), 0);
        if (got <= 0)
            return out;    // EOF/error: fewer than count responses
        buffer.append(chunk, std::size_t(got));
    }
}

std::string
echoRequest(const std::string &body)
{
    return "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(HttpPipelining, TwoRequestsOneSegmentAnsweredInOrder)
{
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [](const HttpRequest &req, unsigned) {
        return HttpResponse(200, "text/plain", "echo:" + req.body);
    });
    server.start();

    // Both requests arrive in ONE send — the server must parse both
    // from one buffered read and answer them in request order.
    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.sendAll(echoRequest("first") +
                             echoRequest("second")));
    const std::vector<Response> responses =
        readPipelinedResponses(sock.fd(), 2);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].status, 200);
    EXPECT_EQ(responses[0].body, "echo:first");
    EXPECT_EQ(responses[1].status, 200);
    EXPECT_EQ(responses[1].body, "echo:second");
    // The second request was parsed behind the unanswered first.
    EXPECT_GE(server.stats().pipelined, 1u);
    server.stop();
}

TEST(HttpPipelining, SlowFirstRequestDoesNotReorderResponses)
{
    // A slow first request and a fast second one, pipelined: serial
    // per-connection dispatch means the fast one must still wait its
    // turn and the responses stay in request order.
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 4;    // plenty of idle workers to tempt reordering
    HttpServer server(opts, [](const HttpRequest &req, unsigned) {
        if (req.body == "slow")
            std::this_thread::sleep_for(
                std::chrono::milliseconds(150));
        return HttpResponse(200, "text/plain", "echo:" + req.body);
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(
        sock.sendAll(echoRequest("slow") + echoRequest("fast")));
    const std::vector<Response> responses =
        readPipelinedResponses(sock.fd(), 2);
    ASSERT_EQ(responses.size(), 2u);
    EXPECT_EQ(responses[0].body, "echo:slow");
    EXPECT_EQ(responses[1].body, "echo:fast");
    server.stop();
}

TEST(HttpPipelining, DeepPipelineAnsweredCompletelyInOrder)
{
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [](const HttpRequest &req, unsigned) {
        return HttpResponse(200, "text/plain", "echo:" + req.body);
    });
    server.start();

    constexpr int kDepth = 8;
    std::string batch;
    for (int i = 0; i < kDepth; ++i)
        batch += echoRequest("r" + std::to_string(i));
    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.sendAll(batch));
    const std::vector<Response> responses =
        readPipelinedResponses(sock.fd(), kDepth);
    ASSERT_EQ(responses.size(), std::size_t(kDepth));
    for (int i = 0; i < kDepth; ++i) {
        EXPECT_EQ(responses[std::size_t(i)].status, 200);
        EXPECT_EQ(responses[std::size_t(i)].body,
                  "echo:r" + std::to_string(i));
    }
    server.stop();
}

TEST(EventDrivenCapacity, IdleConnectionsDoNotStarveWorkers)
{
    // 64 parked keep-alive connections against TWO workers: under a
    // thread-per-connection server each parked socket would pin a
    // worker and live traffic would starve; the reactor parks them
    // as passive epoll entries and live requests go straight
    // through.
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 2;
    HttpServer server(opts, [](const HttpRequest &req, unsigned) {
        return HttpResponse(200, "text/plain", "echo:" + req.body);
    });
    server.start();

    std::vector<std::unique_ptr<ClientSocket>> parked;
    for (int i = 0; i < 64; ++i) {
        parked.push_back(
            std::make_unique<ClientSocket>(server.port()));
        ASSERT_TRUE(parked.back()->ok()) << "conn " << i;
    }

    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 5; ++i) {
        const Response r = roundTrip(server.port(), "POST", "/echo",
                                     "live" + std::to_string(i));
        ASSERT_EQ(r.status, 200) << "live request " << i;
        EXPECT_EQ(r.body, "echo:live" + std::to_string(i));
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    // Far inside the idle timeout: the parked fleet cost nothing.
    EXPECT_LT(elapsed.count(), 3000);

    // The parked connections are still live too, not just ballast.
    ASSERT_TRUE(parked[0]->sendAll(echoRequest("wakeup")));
    const Response woken = parseResponse(parked[0]->readResponse());
    EXPECT_EQ(woken.status, 200);
    EXPECT_EQ(woken.body, "echo:wakeup");
    server.stop();
}

TEST(EventDrivenCapacity, PartialWritesResumeUntilLargeResponseLands)
{
    // A response far larger than the initial socket send buffer: the
    // first writev cannot take it all, so the reactor must park the
    // partial write on EPOLLOUT and resume — repeatedly — until
    // every byte is delivered intact and in order.
    std::string big(8 << 20, '\0');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = char('a' + int(i % 26));
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        return HttpResponse(200, "application/octet-stream", big);
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    ASSERT_TRUE(sock.sendAll(
        "GET /big HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"));

    std::string wire;
    char chunk[64 * 1024];
    for (;;) {
        const ssize_t got = recv(sock.fd(), chunk, sizeof(chunk), 0);
        if (got <= 0)
            break;
        wire.append(chunk, std::size_t(got));
    }
    const Response r = parseResponse(wire);
    EXPECT_EQ(r.status, 200);
    ASSERT_EQ(r.body.size(), big.size());
    EXPECT_EQ(r.body, big);
    server.stop();
}

TEST(EventDrivenCapacity, SlowReaderIsDisconnectedAfterWriteBudget)
{
    // A peer that stops draining entirely: the write budget bounds
    // how long buffered response bytes are held, then the connection
    // is dropped — it cannot hold reactor memory forever.  Closure
    // is observed through the server's own connection gauge (the
    // client side cannot see EOF until it drains what the kernel
    // already buffered, which is exactly the slow path this test
    // avoids).
    const std::string big(4 << 20, 'x');
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    opts.writeTimeoutMs = 250;
    HttpServer server(opts, [&](const HttpRequest &, unsigned) {
        return HttpResponse(200, "application/octet-stream", big);
    });
    server.start();

    ClientSocket sock(server.port());
    ASSERT_TRUE(sock.ok());
    const int rcvbuf = 4096;
    setsockopt(sock.fd(), SOL_SOCKET, SO_RCVBUF, &rcvbuf,
               sizeof(rcvbuf));
    ASSERT_TRUE(
        sock.sendAll("GET /big HTTP/1.1\r\nHost: x\r\n\r\n"));

    // Wait for the request to be accepted and the write to start...
    const auto start = std::chrono::steady_clock::now();
    while (server.stats().connections == 0 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(2))
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ASSERT_EQ(server.stats().connections, 1u);

    // ...then read nothing.  Within a few write budgets the reactor
    // must abandon the stalled write and drop the connection.
    while (server.stats().connections != 0 &&
           std::chrono::steady_clock::now() - start <
               std::chrono::seconds(5))
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_EQ(server.stats().connections, 0u);
    EXPECT_LT(elapsed.count(), 5000);
    server.stop();
}

// ----------------------------------------------- request tracing

TEST(RequestTrace, PhaseSumIdentityHoldsAndClampsRetrograde)
{
    ReqTraceOptions opts;
    opts.workers = 2;
    RequestTracer tracer(opts);

    RequestSpan span;
    span.setEndpoint("simulate");
    span.ts[kStampRecv] = 1000;
    span.ts[kStampParsed] = 1200;
    span.ts[kStampDispatch] = 1100;     // retrograde: clamps to 1200
    span.ts[kStampStart] = 1500;
    span.ts[kStampDone] = 2000;
    span.ts[kStampSerialized] = 0;      // unset: clamps to 2000
    span.ts[kStampFirstWrite] = 2100;
    span.ts[kStampLastWrite] = 2400;
    span.worker = 1;
    tracer.publish(span);

    EXPECT_EQ(span.seq, 1u);
    std::uint64_t sum = 0;
    for (unsigned i = 0; i < kNumReqPhases; ++i) {
        EXPECT_GE(span.ts[i + 1], span.ts[i]);
        sum += span.phaseNs(i);
    }
    EXPECT_EQ(sum, span.totalNs());
    EXPECT_EQ(span.totalNs(), 1400u);

    const std::vector<RequestSpan> spans = tracer.snapshot(0);
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].ts[kStampDispatch], 1200u);
    EXPECT_EQ(spans[0].ts[kStampSerialized], 2000u);
}

TEST(RequestTrace, RingKeepsNewestSpansOldestFirst)
{
    ReqTraceOptions opts;
    opts.ringCapacity = 4;
    opts.workers = 0;
    RequestTracer tracer(opts);
    for (unsigned i = 0; i < 10; ++i) {
        RequestSpan span;
        span.setEndpoint("healthz");
        span.ts[kStampRecv] = 100 * (i + 1);
        span.ts[kStampLastWrite] = 100 * (i + 1) + 50;
        tracer.publish(span);
    }
    // Capacity 4: only the last four survive, sorted by seq.
    const std::vector<RequestSpan> all = tracer.snapshot(0);
    ASSERT_EQ(all.size(), 4u);
    for (std::size_t i = 0; i < all.size(); ++i)
        EXPECT_EQ(all[i].seq, 7 + i);
    // lastN narrows further, still oldest first.
    const std::vector<RequestSpan> last2 = tracer.snapshot(2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].seq, 9u);
    EXPECT_EQ(last2[1].seq, 10u);
}

TEST(RequestTrace, SlowLogThresholdAndRateCap)
{
    ReqTraceOptions opts;
    opts.slowRequestNs = 1000000;   // 1 ms
    RequestTracer tracer(opts);

    RequestSpan fast;
    fast.setEndpoint("simulate");
    fast.ts[kStampRecv] = 1000;
    fast.ts[kStampLastWrite] = 2000;    // 1 us: under threshold
    EXPECT_FALSE(tracer.publish(fast));

    // kSlowLogBurst (10) tokens per window, then suppression; the
    // stamps stay inside one 1 s window.
    unsigned logged = 0;
    for (unsigned i = 0; i < 15; ++i) {
        RequestSpan slow;
        slow.setEndpoint("sweep");
        slow.status = 200;
        slow.ts[kStampRecv] = 1000 + i;
        slow.ts[kStampLastWrite] = 3000000 + i;     // ~3 ms
        if (tracer.publish(slow))
            ++logged;
    }
    EXPECT_EQ(logged, 10u);

    RequestSpan slow;
    slow.setEndpoint("sweep");
    slow.flags = RequestSpan::kFlagCacheHit;
    slow.status = 200;
    slow.fd = 7;
    slow.ts[kStampRecv] = 1000;
    slow.ts[kStampLastWrite] = 5000000;
    tracer.publish(slow);
    const std::string line = formatSlowLine(slow);
    EXPECT_NE(line.find("slow-request"), std::string::npos);
    EXPECT_NE(line.find("endpoint=sweep"), std::string::npos);
    EXPECT_NE(line.find("status=200"), std::string::npos);
    EXPECT_NE(line.find("fd=7"), std::string::npos);
    EXPECT_NE(line.find("cache_hit=1"), std::string::npos);
    EXPECT_NE(line.find("compute_us="), std::string::npos);
    EXPECT_NE(line.find("total_ms="), std::string::npos);
}

TEST(RequestTrace, MetricsExposePhaseAndEndpointHistograms)
{
    ReqTraceOptions opts;
    RequestTracer tracer(opts);
    RequestSpan span;
    span.setEndpoint("simulate");
    span.ts[kStampRecv] = 1000;
    span.ts[kStampParsed] = 1100;
    span.ts[kStampLastWrite] = 9000;
    tracer.publish(span);

    MetricsRegistry out;
    tracer.appendMetrics(out);
    const std::string text = renderPrometheus(out);
    EXPECT_NE(
        text.find("mfusim_http_phase_seconds_count{phase=\"total\"}"),
        std::string::npos)
        << text;
    EXPECT_NE(text.find("mfusim_http_phase_seconds_count"
                        "{phase=\"parse\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("mfusim_http_request_seconds_count"
                        "{endpoint=\"simulate\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("mfusim_http_trace_spans_published_total 1"),
              std::string::npos);
}

/** ServeE2E plus an armed RequestTracer — the production wiring. */
class TracedServeE2E : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ResultCache::instance().clear();
        ServeOptions opts;
        opts.port = 0;
        opts.workers = 2;
        opts.deadlineMs = 10000;

        ReqTraceOptions traceOpts;
        traceOpts.workers = opts.workers;
        tracer_ = std::make_unique<RequestTracer>(traceOpts);

        SimServiceOptions serviceOpts;
        serviceOpts.version = "test";
        serviceOpts.gitSha = "deadbeef";
        serviceOpts.buildType = "Test";
        serviceOpts.tracer = tracer_.get();
        service_ = std::make_unique<SimService>(serviceOpts);
        server_ = std::make_unique<HttpServer>(
            opts, [this](const HttpRequest &request,
                         unsigned budgetMs) {
                return service_->handle(request, budgetMs);
            });
        service_->setServer(server_.get());
        server_->setFastHandler(
            [this](const HttpRequest &request, HttpResponse *out) {
                return service_->tryFastAnswer(request, out);
            });
        server_->setTracer(tracer_.get());
        server_->start();
        ASSERT_NE(server_->port(), 0);
    }

    void
    TearDown() override
    {
        server_->stop();
        FaultRegistry::instance().setFireListener(nullptr);
        FaultRegistry::instance().reset();
        ResultCache::instance().clear();
    }

    std::uint16_t port() const { return server_->port(); }

    std::unique_ptr<RequestTracer> tracer_;
    std::unique_ptr<SimService> service_;
    std::unique_ptr<HttpServer> server_;
};

TEST_F(TracedServeE2E, PipelinedBurstExportsValidTrace)
{
    // A pipelined burst over one connection: every response must
    // come back, and every request must appear in /v1/trace with an
    // exact phase-sum identity.
    constexpr unsigned kBurst = 8;
    const std::string simulate =
        "{\"loop\": 3, \"machine\": \"cray\"}";
    {
        ClientSocket sock(port());
        ASSERT_TRUE(sock.ok());
        std::string wire;
        for (unsigned i = 0; i < kBurst; ++i) {
            const bool last = i + 1 == kBurst;
            wire += "POST /v1/simulate HTTP/1.1\r\n"
                    "Host: localhost\r\nConnection: " +
                std::string(last ? "close" : "keep-alive") +
                "\r\nContent-Length: " +
                std::to_string(simulate.size()) + "\r\n\r\n" +
                simulate;
        }
        ASSERT_TRUE(sock.sendAll(wire));
        std::string all;
        for (unsigned i = 0; i < kBurst; ++i) {
            const std::string one = sock.readResponse();
            if (one.empty())
                break;
            all += one;
        }
        std::size_t ok = 0, pos = 0;
        while ((pos = all.find("HTTP/1.1 200", pos)) !=
               std::string::npos) {
            ++ok;
            pos += 8;
        }
        EXPECT_EQ(ok, kBurst) << all.substr(0, 400);
    }

    const Response trace = roundTrip(port(), "GET", "/v1/trace");
    ASSERT_EQ(trace.status, 200);
    const Json doc = parseJson(trace.body);
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.find("schema")->asString(),
              "mfusim-serve-trace-v1");

    // Walk the events: b/e pairing by id, phase-sum identity on
    // every "e", and thread-name metadata for reactor + workers.
    const Json *events = doc.find("traceEvents");
    ASSERT_TRUE(events != nullptr && events->isArray());
    std::size_t begins = 0, ends = 0, threadNames = 0;
    std::size_t simulateSpans = 0;
    for (const Json &event : events->items()) {
        const std::string ph = event.find("ph")->asString();
        if (ph == "M") {
            if (event.find("name")->asString() == "thread_name")
                ++threadNames;
            continue;
        }
        if (ph == "b")
            ++begins;
        if (ph != "e")
            continue;
        ++ends;
        const Json *args = event.find("args");
        ASSERT_TRUE(args != nullptr && args->isObject());
        const Json *phases = args->find("phase_ns");
        ASSERT_TRUE(phases != nullptr && phases->isObject());
        double sum = 0;
        for (unsigned i = 0; i < kNumReqPhases; ++i)
            sum += phases->find(reqPhaseName(i))->asNumber();
        EXPECT_DOUBLE_EQ(sum, args->find("total_ns")->asNumber());
        if (event.find("name")->asString() == "simulate")
            ++simulateSpans;
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GE(simulateSpans, kBurst);
    // tid 1 (reactor) + one per worker.
    EXPECT_EQ(threadNames, 3u);

    // ?last=N narrows the export.
    const Response last2 =
        roundTrip(port(), "GET", "/v1/trace?last=2");
    ASSERT_EQ(last2.status, 200);
    std::size_t last2Ends = 0, pos = 0;
    while ((pos = last2.body.find("\"ph\": \"e\"", pos)) !=
           std::string::npos) {
        ++last2Ends;
        pos += 9;
    }
    EXPECT_EQ(last2Ends, 2u);
}

TEST_F(TracedServeE2E, MetricsCarryPhaseHistogramsAndBuildInfo)
{
    ASSERT_EQ(roundTrip(port(), "GET", "/healthz").status, 200);
    const Response metrics = roundTrip(port(), "GET", "/metrics");
    ASSERT_EQ(metrics.status, 200);
    const std::string &text = metrics.body;
    EXPECT_NE(text.find("mfusim_http_phase_seconds_bucket"),
              std::string::npos);
    EXPECT_NE(text.find("phase=\"compute\""), std::string::npos);
    EXPECT_NE(text.find("mfusim_http_request_seconds_count"),
              std::string::npos);
    EXPECT_NE(text.find("mfusim_build_info{"), std::string::npos);
    EXPECT_NE(text.find("git_sha=\"deadbeef\""), std::string::npos);
    EXPECT_NE(text.find("build_type=\"Test\""), std::string::npos);
    EXPECT_NE(text.find("mfusim_process_uptime_seconds"),
              std::string::npos);
}

TEST_F(TracedServeE2E, HealthzReportsUptimeAndGitSha)
{
    const Response r = roundTrip(port(), "GET", "/healthz");
    ASSERT_EQ(r.status, 200);
    const Json body = parseJson(r.body);
    EXPECT_EQ(body.find("git_sha")->asString(), "deadbeef");
    ASSERT_NE(body.find("uptime_seconds"), nullptr);
    EXPECT_GE(body.find("uptime_seconds")->asNumber(), 0.0);
}

TEST_F(TracedServeE2E, FaultFiresAppearAsInstantEvents)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    RequestTracer *tracer = tracer_.get();
    FaultRegistry::instance().setFireListener(
        [tracer](const std::string &point) {
            tracer->recordFault(point);
        });
    FaultRegistry::instance().configure("worker.overrun:once");

    const Response r = roundTrip(
        port(), "POST", "/v1/simulate",
        "{\"loop\": 2, \"machine\": \"cray\"}");
    EXPECT_EQ(r.status, 503);   // the injected overrun's answer

    const Response trace = roundTrip(port(), "GET", "/v1/trace");
    ASSERT_EQ(trace.status, 200);
    EXPECT_NE(trace.body.find("fault worker.overrun"),
              std::string::npos);
    EXPECT_NE(trace.body.find("\"ph\": \"i\""), std::string::npos);

    FaultRegistry::instance().setFireListener(nullptr);
    FaultRegistry::instance().configure("");
}

TEST(RequestTraceDisabled, TraceEndpointAnswers503)
{
    ResultCache::instance().clear();
    ServeOptions opts;
    opts.port = 0;
    opts.workers = 1;
    SimService service(SimServiceOptions{ "test", 64 });
    HttpServer server(opts,
                      [&service](const HttpRequest &request,
                                 unsigned budgetMs) {
                          return service.handle(request, budgetMs);
                      });
    service.setServer(&server);
    server.start();
    const Response r = roundTrip(server.port(), "GET", "/v1/trace");
    EXPECT_EQ(r.status, 503);
    server.stop();
    ResultCache::instance().clear();
}

TEST(HttpServerAdmission, PortCollisionThrowsServeError)
{
    const auto handler = [](const HttpRequest &, unsigned) {
        return HttpResponse(200, "text/plain", "ok");
    };
    ServeOptions opts;
    opts.port = 0;
    HttpServer first(opts, handler);
    first.start();
    ServeOptions clash;
    clash.port = first.port();
    HttpServer second(clash, handler);
    try {
        second.start();
        FAIL() << "no ServeError for a taken port";
    } catch (const ServeError &e) {
        EXPECT_EQ(e.exitCode(), 8);
        EXPECT_EQ(e.httpStatus(), 0);
    }
    first.stop();
}

} // namespace
} // namespace mfusim
