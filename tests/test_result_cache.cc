/**
 * @file
 * ResultCache: correctness of the memo keys (no aliasing between
 * organization variants), hit/miss accounting, concurrency, the
 * sweep-runner integration, and cooperative shutdown of runGrid.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <memory>
#include <thread>
#include <vector>

#include "mfusim/core/shutdown.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/serve/result_cache.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

namespace mfusim
{
namespace
{

/** A private cache per test: the singleton would couple tests. */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override { ResultCache::instance().clear(); }
    void TearDown() override { ResultCache::instance().clear(); }
};

SimResult
fakeResult(std::uint64_t instructions, ClockCycle cycles)
{
    SimResult r;
    r.instructions = instructions;
    r.cycles = cycles;
    return r;
}

TEST_F(ResultCacheTest, MissThenHit)
{
    ResultCache &cache = ResultCache::instance();
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return fakeResult(100, 50);
    };

    bool hit = true;
    const SimResult first = cache.getOrCompute(
        "simple", "LL1", configM11BR5(), false, compute, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(first.instructions, 100u);
    EXPECT_EQ(computes, 1);

    const SimResult second = cache.getOrCompute(
        "simple", "LL1", configM11BR5(), false, compute, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(second.instructions, 100u);
    EXPECT_EQ(second.cycles, first.cycles);
    EXPECT_EQ(computes, 1) << "hit must not recompute";

    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST_F(ResultCacheTest, KeyComponentsAreAllDiscriminating)
{
    // Every key component changed in isolation must miss: machine
    // key, trace, config, audit mode.
    ResultCache &cache = ResultCache::instance();
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return fakeResult(1, 1);
    };

    cache.getOrCompute("simple", "LL1", configM11BR5(), false,
                       compute);
    cache.getOrCompute("cray", "LL1", configM11BR5(), false, compute);
    cache.getOrCompute("simple", "LL2", configM11BR5(), false,
                       compute);
    cache.getOrCompute("simple", "LL1", configM5BR2(), false,
                       compute);
    cache.getOrCompute("simple", "LL1", configM11BR5(), true,
                       compute);
    EXPECT_EQ(computes, 5);
    EXPECT_EQ(cache.stats().misses, 5u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST_F(ResultCacheTest, KeyCannotBeSpoofedAcrossFields)
{
    // The composed key is newline-separated; a machine key that
    // *contains* the would-be separator content must not alias a
    // different (machine, trace) split.  cacheKey() values never
    // contain newlines, so composition is injective.
    ResultCache &cache = ResultCache::instance();
    int computes = 0;
    const auto compute = [&] {
        ++computes;
        return fakeResult(1, 1);
    };
    cache.getOrCompute("a|x", "LL1", configM11BR5(), false, compute);
    cache.getOrCompute("a", "|xLL1", configM11BR5(), false, compute);
    EXPECT_EQ(computes, 2);
}

TEST_F(ResultCacheTest, SimulatorCacheKeysDistinguishVariants)
{
    // The aliasing hazard that motivated cacheKey(): ScoreboardSim's
    // name() is "CRAY-like" for every branch policy, so keys must
    // come from cacheKey(), which serializes every organization knob.
    const MachineConfig cfg = configM11BR5();

    ScoreboardConfig blocking = ScoreboardConfig::crayLike();
    ScoreboardConfig oracle = ScoreboardConfig::crayLike();
    oracle.branchPolicy = BranchPolicy::kOracle;
    const ScoreboardSim a(blocking, cfg), b(oracle, cfg);
    EXPECT_EQ(a.name(), b.name()) << "precondition: names alias";
    EXPECT_NE(a.cacheKey(), b.cacheKey());

    Cdc6600Config busOn, busOff;
    busOff.modelResultBus = false;
    EXPECT_NE(Cdc6600Sim(busOn, cfg).cacheKey(),
              Cdc6600Sim(busOff, cfg).cacheKey());

    TomasuloConfig rs3, rs4;
    rs3.stationsPerFu = 3;
    rs4.stationsPerFu = 4;
    EXPECT_NE(TomasuloSim(rs3, cfg).cacheKey(),
              TomasuloSim(rs4, cfg).cacheKey());

    EXPECT_NE(RuuSim(RuuConfig{ 4, 50, BusKind::kPerUnit }, cfg)
                  .cacheKey(),
              RuuSim(RuuConfig{ 4, 51, BusKind::kPerUnit }, cfg)
                  .cacheKey());
}

TEST_F(ResultCacheTest, ClearDropsEntriesAndStats)
{
    ResultCache &cache = ResultCache::instance();
    cache.getOrCompute("simple", "LL1", configM11BR5(), false,
                       [] { return fakeResult(1, 1); });
    cache.clear();
    const ResultCacheStats stats = cache.stats();
    EXPECT_EQ(stats.hits, 0u);
    EXPECT_EQ(stats.misses, 0u);
    EXPECT_EQ(stats.entries, 0u);
    EXPECT_FALSE(cache.lookup("simple", "LL1", configM11BR5(), false,
                              nullptr));
}

TEST_F(ResultCacheTest, ThrowingComputeStoresNothing)
{
    ResultCache &cache = ResultCache::instance();
    EXPECT_THROW(cache.getOrCompute(
                     "simple", "LL1", configM11BR5(), false,
                     []() -> SimResult {
                         throw SimError("cell failed");
                     }),
                 SimError);
    EXPECT_EQ(cache.stats().entries, 0u);
    // The failed cell is re-attempted (and re-diagnosed), not served
    // a phantom result.
    EXPECT_THROW(cache.getOrCompute(
                     "simple", "LL1", configM11BR5(), false,
                     []() -> SimResult {
                         throw SimError("cell failed again");
                     }),
                 SimError);
}

TEST_F(ResultCacheTest, ConcurrentGetOrComputeIsCoherent)
{
    // Many threads hammering a small key space: every returned
    // result must match its key's canonical value, and the entry
    // count must equal the key count.
    ResultCache &cache = ResultCache::instance();
    constexpr int kThreads = 8, kIterations = 50, kKeys = 5;
    std::vector<std::thread> threads;
    std::atomic<int> mismatches{ 0 };
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIterations; ++i) {
                const int k = i % kKeys;
                const SimResult r = cache.getOrCompute(
                    "sim" + std::to_string(k), "LL1", configM11BR5(),
                    false, [&] {
                        return fakeResult(std::uint64_t(k) + 1,
                                          ClockCycle(k) + 1);
                    });
                if (r.instructions != std::uint64_t(k) + 1)
                    ++mismatches;
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(cache.stats().entries, std::uint64_t(kKeys));
    EXPECT_EQ(cache.stats().hits + cache.stats().misses,
              std::uint64_t(kThreads) * kIterations);
}

TEST_F(ResultCacheTest, AppendMetricsExportsCounters)
{
    ResultCache &cache = ResultCache::instance();
    const auto compute = [] { return fakeResult(1, 1); };
    cache.getOrCompute("simple", "LL1", configM11BR5(), false,
                       compute);
    cache.getOrCompute("simple", "LL1", configM11BR5(), false,
                       compute);

    MetricsRegistry metrics;
    cache.appendMetrics(metrics);
    EXPECT_EQ(metrics.counterValue("result_cache.hits"), 1u);
    EXPECT_EQ(metrics.counterValue("result_cache.misses"), 1u);
    EXPECT_EQ(metrics.gaugeValue("result_cache.entries"), 1.0);
}

TEST_F(ResultCacheTest, SweepSecondRunIsAllHits)
{
    // The satellite: a repeated `rate all`-style sweep within one
    // process must serve every cell from the cache, bit-identically.
    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<ScoreboardSim>(
            ScoreboardConfig::crayLike(), c);
    };
    const std::vector<int> loops{ 1, 2, 3, 4, 5 };
    const MachineConfig cfg = configM5BR2();

    const std::vector<double> first =
        parallelPerLoopRates(factory, loops, cfg, 2);
    const ResultCacheStats after = ResultCache::instance().stats();
    EXPECT_EQ(after.misses, loops.size());
    EXPECT_EQ(after.hits, 0u);

    const std::vector<double> second =
        parallelPerLoopRates(factory, loops, cfg, 2);
    const ResultCacheStats rerun = ResultCache::instance().stats();
    EXPECT_EQ(rerun.misses, loops.size());
    EXPECT_EQ(rerun.hits, loops.size());
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        EXPECT_EQ(second[i], first[i]) << "loop " << loops[i];
}

TEST_F(ResultCacheTest, SweepVariantsDoNotAlias)
{
    // Identical name(), different branch policy: the sweeps must not
    // cross-contaminate through the cache (the bug cacheKey() was
    // introduced to prevent).
    const std::vector<int> loops{ 3 };
    const MachineConfig cfg = configM11BR5();
    const auto rateWith = [&](BranchPolicy policy) {
        const SimFactory factory = [policy](const MachineConfig &c)
            -> std::unique_ptr<Simulator> {
            ScoreboardConfig org = ScoreboardConfig::crayLike();
            org.branchPolicy = policy;
            return std::make_unique<ScoreboardSim>(org, c);
        };
        return parallelPerLoopRates(factory, loops, cfg, 1)[0];
    };
    const double blocking = rateWith(BranchPolicy::kBlocking);
    const double oracle = rateWith(BranchPolicy::kOracle);
    EXPECT_NE(blocking, oracle)
        << "oracle branching must beat blocking on LL3 — a tie "
           "suggests the cache aliased the two organizations";
    EXPECT_EQ(ResultCache::instance().stats().entries, 2u);
}

TEST(ShutdownGrid, SigintStopsGridAndFlagsPartialResults)
{
    // raise(SIGINT) mid-grid: no cell past the signal may start, the
    // in-flight cells complete, and the signal is recorded for the
    // 128+signo exit path.  The handler is installed for the whole
    // test binary from here on; resetShutdownForTests() clears the
    // flag for later tests.
    installShutdownHandler();
    resetShutdownForTests();
    ASSERT_FALSE(shutdownRequested());

    std::vector<std::atomic<int>> visits(64);
    runGrid(64, [&](std::size_t i) {
        visits[i]++;
        if (i == 10)
            raise(SIGINT);
    }, 1);

    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), SIGINT);
    int visited = 0;
    for (std::size_t i = 0; i < visits.size(); ++i)
        visited += visits[i].load();
    EXPECT_EQ(visited, 11) << "serial grid must stop at the signal";

    resetShutdownForTests();
    EXPECT_FALSE(shutdownRequested());
    EXPECT_EQ(shutdownSignal(), 0);

    // After the reset the grid runs to completion again.
    std::atomic<int> count{ 0 };
    runGrid(8, [&](std::size_t) { count++; }, 2);
    EXPECT_EQ(count.load(), 8);
}

TEST(ShutdownGrid, InterruptedSweepStillMergesPartialMetrics)
{
    // parallelPerLoopMetrics under SIGTERM: completed cells merge,
    // the output is stamped with the interruption, and nothing
    // crashes or deadlocks.
    installShutdownHandler();
    resetShutdownForTests();
    ResultCache::instance().clear();

    class SignalOnThird : public Simulator
    {
      public:
        explicit SignalOnThird(const MachineConfig &cfg) : cfg_(cfg)
        {}
        using Simulator::run;
        SimResult
        run(const DecodedTrace &trace) override
        {
            if (trace.name() == "LL3")
                raise(SIGTERM);
            SimResult r;
            r.instructions = trace.size();
            r.cycles = ClockCycle(trace.size()) * 2;
            return r;
        }
        std::string name() const override { return "SignalOnThird"; }
        const MachineConfig &config() const override { return cfg_; }

      private:
        MachineConfig cfg_;
    };

    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<SignalOnThird>(c);
    };
    const std::vector<int> loops{ 1, 2, 3, 4, 5, 6, 7 };
    const SweepMetrics sweep = parallelPerLoopMetrics(
        factory, loops, configM11BR5(), 1);

    EXPECT_TRUE(shutdownRequested());
    EXPECT_EQ(sweep.metrics.labels().at("interrupted"), "SIGTERM");
    EXPECT_EQ(sweep.metrics.gaugeValue("sweep.cells_total"),
              double(loops.size()));
    const double completed =
        sweep.metrics.gaugeValue("sweep.cells_completed");
    EXPECT_GE(completed, 3.0);
    EXPECT_LT(completed, double(loops.size()));
    resetShutdownForTests();
}

} // namespace
} // namespace mfusim
