/**
 * @file
 * Trace serialization tests: format round trips and error handling.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mfusim/core/trace_io.hh"
#include "mfusim/harness/trace_library.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

DynTrace
roundTrip(const DynTrace &trace)
{
    std::stringstream buffer;
    saveTrace(buffer, trace);
    return loadTrace(buffer);
}

TEST(TraceIo, SmallRoundTrip)
{
    DynOp br = dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true);
    br.backward = true;
    br.staticIdx = 7;
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kLoadS, S2, A1),
        dyn(Op::kFAdd, S3, S1, S2),
        dyn(Op::kStoreS, kNoReg, A1, S3),
        br,
    });

    const DynTrace loaded = roundTrip(trace);
    ASSERT_EQ(loaded.size(), trace.size());
    EXPECT_EQ(loaded.name(), trace.name());
    for (std::size_t i = 0; i < trace.size(); ++i) {
        EXPECT_EQ(loaded[i].op, trace[i].op) << i;
        EXPECT_EQ(loaded[i].dst, trace[i].dst) << i;
        EXPECT_EQ(loaded[i].srcA, trace[i].srcA) << i;
        EXPECT_EQ(loaded[i].srcB, trace[i].srcB) << i;
        EXPECT_EQ(loaded[i].staticIdx, trace[i].staticIdx) << i;
        EXPECT_EQ(loaded[i].taken, trace[i].taken) << i;
        EXPECT_EQ(loaded[i].backward, trace[i].backward) << i;
    }
}

TEST(TraceIo, BenchmarkTraceRoundTrip)
{
    const DynTrace &original = TraceLibrary::instance().trace(5);
    const DynTrace loaded = roundTrip(original);
    ASSERT_EQ(loaded.size(), original.size());
    // Aggregate stats must be identical.
    const TraceStats a = original.stats();
    const TraceStats b = loaded.stats();
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.takenBranches, b.takenBranches);
    EXPECT_EQ(a.btfnCorrectBranches, b.btfnCorrectBranches);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.parcels, b.parcels);
}

TEST(TraceIo, SaveRegisterNamesRoundTrip)
{
    const DynTrace trace = traceOf({
        dyn(Op::kTMovS, regT(63), S7),
        dyn(Op::kBMovA, regB(12), A3),
    });
    const DynTrace loaded = roundTrip(trace);
    EXPECT_EQ(loaded[0].dst, regT(63));
    EXPECT_EQ(loaded[1].dst, regB(12));
}

TEST(TraceIo, EmptyTrace)
{
    const DynTrace loaded = roundTrip(DynTrace("empty"));
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(loaded.name(), "empty");
}

TEST(TraceIo, BadHeaderThrows)
{
    std::istringstream input("not-a-trace\n");
    EXPECT_THROW(loadTrace(input), std::runtime_error);
}

TEST(TraceIo, UnknownMnemonicThrows)
{
    std::istringstream input(
        "mfusim-trace v1\nname t\nops 1\nbogus -- -- -- 0 - -\n");
    EXPECT_THROW(loadTrace(input), std::runtime_error);
}

TEST(TraceIo, BadRegisterThrows)
{
    std::istringstream input(
        "mfusim-trace v1\nname t\nops 1\nfadd S9 S1 S2 0 - -\n");
    EXPECT_THROW(loadTrace(input), std::runtime_error);
}

TEST(TraceIo, CountMismatchThrows)
{
    std::istringstream input(
        "mfusim-trace v1\nname t\nops 2\nsconst S1 -- -- 0 - -\n");
    EXPECT_THROW(loadTrace(input), std::runtime_error);
}

} // namespace
} // namespace mfusim
