/**
 * @file
 * Regression pins: headline numbers of the reproduction, pinned to
 * three decimals.  Traces are deterministic, so any drift here means
 * the model or the benchmark programs changed and EXPERIMENTS.md
 * must be re-validated.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace mfusim
{
namespace
{

constexpr double kTol = 5e-4;

double
meanScoreboard(const ScoreboardConfig &org, LoopClass cls,
               const MachineConfig &cfg)
{
    return meanIssueRate(
        [&org](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(
                new ScoreboardSim(org, c));
        },
        cls, cfg);
}

TEST(RegressionPins, Table1CrayLike)
{
    // The "CRAY-like" row of Table 1 (measured values recorded in
    // EXPERIMENTS.md).
    EXPECT_NEAR(meanScoreboard(ScoreboardConfig::crayLike(),
                               LoopClass::kScalar, configM11BR5()),
                0.2624, kTol);
    EXPECT_NEAR(meanScoreboard(ScoreboardConfig::crayLike(),
                               LoopClass::kScalar, configM5BR2()),
                0.37059, kTol);
    EXPECT_NEAR(meanScoreboard(ScoreboardConfig::crayLike(),
                               LoopClass::kVectorizable,
                               configM11BR5()),
                0.25261, kTol);
}

TEST(RegressionPins, Table1Simple)
{
    const double scalar = meanIssueRate(
        [](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(new SimpleSim(c));
        },
        LoopClass::kScalar, configM11BR5());
    EXPECT_NEAR(scalar, 0.16944, kTol);
}

TEST(RegressionPins, Table2ScalarActualLimit)
{
    std::vector<double> rates;
    for (int id : scalarLoopIds()) {
        rates.push_back(
            computeLimits(TraceLibrary::instance().trace(id),
                          configM11BR5())
                .actualRate);
    }
    EXPECT_NEAR(harmonicMean(rates), 1.27532, 2e-3);
}

TEST(RegressionPins, Table2PseudoLimitMemoryIndependence)
{
    // The reproduction's analogue of the paper's 1.34 == 1.34: the
    // limits agree to well under 1% (they print identically at the
    // paper's two decimals); the residue is the handful of loops
    // whose memory chains are not fully hidden.
    std::vector<double> m11, m5;
    for (int id : scalarLoopIds()) {
        m11.push_back(
            computeLimits(TraceLibrary::instance().trace(id),
                          configM11BR5())
                .pseudoRate);
        m5.push_back(
            computeLimits(TraceLibrary::instance().trace(id),
                          configM5BR5())
                .pseudoRate);
    }
    EXPECT_NEAR(harmonicMean(m11), harmonicMean(m5),
                0.01 * harmonicMean(m11));
}

TEST(RegressionPins, Table7RuuScalar)
{
    const auto rate = [](unsigned w, unsigned size) {
        return meanIssueRate(
            [w, size](const MachineConfig &c) {
                return std::unique_ptr<Simulator>(new RuuSim(
                    { w, size, BusKind::kPerUnit }, c));
            },
            LoopClass::kScalar, configM11BR5());
    };
    EXPECT_NEAR(rate(1, 50), 0.56491, 2e-3);
    EXPECT_NEAR(rate(4, 100), 0.86767, 2e-3);
}

TEST(RegressionPins, Table8RuuVector)
{
    const double rate = meanIssueRate(
        [](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(new RuuSim(
                { 4, 100, BusKind::kPerUnit }, c));
        },
        LoopClass::kVectorizable, configM11BR5());
    EXPECT_NEAR(rate, 1.05286, 2e-3);
}

} // namespace
} // namespace mfusim
