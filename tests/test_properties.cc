/**
 * @file
 * Property tests: model invariants that must hold on every benchmark
 * trace under every machine configuration.  These encode the
 * qualitative claims of the paper (orderings between machine
 * organizations, monotonicity in resources, limits dominating
 * simulated rates) as executable checks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>

#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace mfusim
{
namespace
{

/** (loop id, config index) sweep. */
class LoopConfig
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    const DynTrace &
    trace() const
    {
        return TraceLibrary::instance().trace(std::get<0>(GetParam()));
    }

    MachineConfig
    cfg() const
    {
        return standardConfigs()[std::size_t(std::get<1>(GetParam()))];
    }

    double
    rateSimple() const
    {
        SimpleSim sim(cfg());
        return sim.run(trace()).issueRate();
    }

    double
    rateScoreboard(const ScoreboardConfig &org) const
    {
        ScoreboardSim sim(org, cfg());
        return sim.run(trace()).issueRate();
    }

    double
    rateMulti(unsigned width, bool ooo, BusKind bus) const
    {
        MultiIssueSim sim({ width, ooo, bus, false }, cfg());
        return sim.run(trace()).issueRate();
    }

    double
    rateRuu(unsigned width, unsigned size, BusKind bus) const
    {
        RuuSim sim({ width, size, bus }, cfg());
        return sim.run(trace()).issueRate();
    }
};

TEST_P(LoopConfig, MachineOrderingOfTable1)
{
    // Simple <= SerialMemory <= NonSegmented <= CRAY-like.
    const double simple = rateSimple();
    const double serial =
        rateScoreboard(ScoreboardConfig::serialMemory());
    const double nonseg =
        rateScoreboard(ScoreboardConfig::nonSegmented());
    const double cray = rateScoreboard(ScoreboardConfig::crayLike());
    EXPECT_LE(simple, serial + 1e-12);
    EXPECT_LE(serial, nonseg + 1e-12);
    EXPECT_LE(nonseg, cray + 1e-12);
}

TEST_P(LoopConfig, SingleIssueNeverExceedsOne)
{
    EXPECT_LE(rateScoreboard(ScoreboardConfig::crayLike()), 1.0);
    EXPECT_LE(rateSimple(), 1.0);
}

TEST_P(LoopConfig, MultiIssueBoundedByWidth)
{
    for (unsigned w : { 1u, 2u, 4u }) {
        EXPECT_LE(rateMulti(w, true, BusKind::kPerUnit),
                  double(w) + 1e-12);
    }
}

TEST_P(LoopConfig, SequentialIssueRoughlyMonotoneInWidth)
{
    // A wider buffer mostly helps, but the refill-on-drain rule
    // makes issue rates depend on how branches fall into the buffer
    // -- the paper: "there are cases where previously a branch
    // instruction was the last instruction in the buffer and now it
    // resides alone in the instruction buffer.  This leads to the
    // 'sawtooth' pattern".  LL11's 7-op body against a 3-wide buffer
    // dips ~6%, so bound the dip at 8%.
    double prev = 0.0;
    for (unsigned w = 1; w <= 8; ++w) {
        const double rate = rateMulti(w, false, BusKind::kPerUnit);
        EXPECT_GE(rate, prev * 0.92) << "width " << w;
        prev = std::max(prev, rate);
    }
    // And width 8 must not be worse than width 1.
    EXPECT_GE(rateMulti(8, false, BusKind::kPerUnit),
              rateMulti(1, false, BusKind::kPerUnit) - 1e-12);
}

TEST_P(LoopConfig, OutOfOrderAtLeastSequential)
{
    for (unsigned w : { 2u, 4u, 8u }) {
        EXPECT_GE(rateMulti(w, true, BusKind::kPerUnit),
                  rateMulti(w, false, BusKind::kPerUnit) - 1e-12)
            << "width " << w;
    }
}

TEST_P(LoopConfig, NBusAtLeastOneBus)
{
    for (unsigned w : { 2u, 4u }) {
        EXPECT_GE(rateMulti(w, false, BusKind::kPerUnit),
                  rateMulti(w, false, BusKind::kSingle) - 1e-12);
        EXPECT_GE(rateMulti(w, true, BusKind::kPerUnit),
                  rateMulti(w, true, BusKind::kSingle) - 1e-12);
    }
}

TEST_P(LoopConfig, CrossbarAtLeastNBus)
{
    for (unsigned w : { 2u, 4u }) {
        EXPECT_GE(rateMulti(w, false, BusKind::kCrossbar),
                  rateMulti(w, false, BusKind::kPerUnit) - 1e-12);
    }
}

TEST_P(LoopConfig, WidthOneConsistencyAcrossSimulators)
{
    // Table 3 row 1 equals Table 1's CRAY-like row: a 1-wide buffer
    // machine is the CRAY-like single-issue machine.
    const double multi = rateMulti(1, false, BusKind::kSingle);
    const double cray = rateScoreboard(ScoreboardConfig::crayLike());
    EXPECT_DOUBLE_EQ(multi, cray);
    // And out-of-order within a 1-entry buffer changes nothing.
    EXPECT_DOUBLE_EQ(rateMulti(1, true, BusKind::kSingle), cray);
    // Nor does the bus organization at width 1.
    EXPECT_DOUBLE_EQ(rateMulti(1, false, BusKind::kPerUnit), cray);
}

TEST_P(LoopConfig, RuuMonotoneInRuuSize)
{
    for (unsigned w : { 1u, 2u, 4u }) {
        double prev = 0.0;
        for (unsigned size : { 10u, 20u, 40u, 100u }) {
            if (size < w)
                continue;
            const double rate = rateRuu(w, size, BusKind::kPerUnit);
            EXPECT_GE(rate, prev - 0.03)
                << "w=" << w << " size=" << size;
            prev = rate;
        }
    }
}

TEST_P(LoopConfig, RuuBeatsCrayScoreboardGivenEnoughBuffering)
{
    // Dependency resolution with a large RUU can only help: blocked
    // issue is strictly less opportunity than waiting in the RUU.
    EXPECT_GE(rateRuu(1, 50, BusKind::kPerUnit),
              rateScoreboard(ScoreboardConfig::crayLike()) - 1e-9);
}

TEST_P(LoopConfig, NoSimulatorBeatsTheDataflowLimit)
{
    const LimitResult limit = computeLimits(trace(), cfg(), false);
    const double bound = limit.actualRate + 1e-9;
    EXPECT_LE(rateSimple(), bound);
    EXPECT_LE(rateScoreboard(ScoreboardConfig::crayLike()), bound);
    EXPECT_LE(rateMulti(8, true, BusKind::kCrossbar), bound);
    EXPECT_LE(rateRuu(4, 100, BusKind::kPerUnit), bound);
}

TEST_P(LoopConfig, SingleIssueBoundedBySerialLimit)
{
    // The serial limit (in-order completion per register, unlimited
    // issue) bounds every machine that blocks issue on WAW hazards.
    const LimitResult serial = computeLimits(trace(), cfg(), true);
    EXPECT_LE(rateScoreboard(ScoreboardConfig::crayLike()),
              serial.actualRate + 1e-9);
    EXPECT_LE(rateMulti(8, true, BusKind::kPerUnit),
              serial.actualRate + 1e-9);
}

TEST_P(LoopConfig, FasterMemoryNeverHurts)
{
    if (cfg().memLatency != 11)
        GTEST_SKIP() << "baseline config only";
    MachineConfig fast = cfg();
    fast.memLatency = 5;
    ScoreboardSim slow_sim(ScoreboardConfig::crayLike(), cfg());
    ScoreboardSim fast_sim(ScoreboardConfig::crayLike(), fast);
    EXPECT_GE(fast_sim.run(trace()).issueRate(),
              slow_sim.run(trace()).issueRate() - 1e-12);
}

TEST_P(LoopConfig, FasterBranchNeverHurts)
{
    if (cfg().branchTime != 5)
        GTEST_SKIP() << "baseline config only";
    MachineConfig fast = cfg();
    fast.branchTime = 2;
    ScoreboardSim slow_sim(ScoreboardConfig::crayLike(), cfg());
    ScoreboardSim fast_sim(ScoreboardConfig::crayLike(), fast);
    EXPECT_GE(fast_sim.run(trace()).issueRate(),
              slow_sim.run(trace()).issueRate() - 1e-12);
}

TEST_P(LoopConfig, RatesAreDeterministic)
{
    EXPECT_DOUBLE_EQ(rateRuu(2, 20, BusKind::kPerUnit),
                     rateRuu(2, 20, BusKind::kPerUnit));
    EXPECT_DOUBLE_EQ(rateMulti(4, true, BusKind::kPerUnit),
                     rateMulti(4, true, BusKind::kPerUnit));
}

INSTANTIATE_TEST_SUITE_P(
    AllLoopsAllConfigs, LoopConfig,
    ::testing::Combine(::testing::Range(1, 15),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) + "_" +
            standardConfigs()[std::size_t(std::get<1>(info.param))]
                .name();
    });

} // namespace
} // namespace mfusim
