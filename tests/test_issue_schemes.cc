/**
 * @file
 * CDC 6600 and Tomasulo issue-scheme tests (paper section 3.3):
 * golden timings for the hazard behaviours that distinguish the
 * schemes, plus ordering properties against the blocking scoreboard
 * and the RUU on the benchmark traces.
 */

#include <gtest/gtest.h>

#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

ClockCycle
cdcCycles(const DynTrace &trace,
          const MachineConfig &cfg = configM11BR5())
{
    Cdc6600Sim sim({}, cfg);
    return sim.run(trace).cycles;
}

ClockCycle
tomCycles(const DynTrace &trace, unsigned rs = 3, unsigned cdb = 1,
          const MachineConfig &cfg = configM11BR5())
{
    TomasuloSim sim({ rs, cdb, BranchPolicy::kBlocking }, cfg);
    return sim.run(trace).cycles;
}

// ---- CDC 6600 -------------------------------------------------------

TEST(Cdc6600Sim, RawDoesNotBlockIssue)
{
    // load S1; fadd (RAW-blocked, parks at the FP add unit);
    // independent sconst issues right behind it.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
        dyn(Op::kSConst, S3),
    });
    // load@0 (ready 11); fadd issues@1, dispatches 11, done 17;
    // sconst issues@2, done 3.  End 17.
    EXPECT_EQ(cdcCycles(trace), 17u);
    // The blocking scoreboard stalls the sconst until cycle 11:
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    // fadd issues 11 (done 17), sconst 12 (done 13): also ends 17,
    // but the sconst ISSUED 10 cycles later.  Make the difference
    // visible with a trailing load (memory port is free either way,
    // so its completion tracks its issue time).
    const DynTrace tail = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
        dyn(Op::kLoadS, S3, A2),
    });
    // CDC: loads at 0 and 2 -> second done 13; fadd done 17 -> 17.
    EXPECT_EQ(cdcCycles(tail), 17u);
    // CRAY blocking: second load issues at 12, done 23.
    EXPECT_EQ(cray.run(tail).cycles, 23u);
}

TEST(Cdc6600Sim, WawStillBlocksIssue)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),       // WAW: blocked until 11
        dyn(Op::kSConst, S2),
    });
    // sconst S1 issues 11 (done 12), sconst S2 issues 12 (done 13).
    EXPECT_EQ(cdcCycles(trace), 13u);
}

TEST(Cdc6600Sim, WaitingStationBlocksSameUnit)
{
    // fadd waits for a load; a second (independent) fadd needs the
    // same unit's station and must wait for the first to dispatch.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),     // parks until 11
        dyn(Op::kFAdd, S3, S4, S5),     // independent, same unit
    });
    // Station frees at dispatch+1 = 12; second fadd issues 12,
    // dispatches 12, completes 18.
    EXPECT_EQ(cdcCycles(trace), 18u);
}

TEST(Cdc6600Sim, DistinctUnitsUnaffectedByParkedInstruction)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),     // parks at FP add
        dyn(Op::kFMul, S3, S4, S5),     // FP multiply: free to go
    });
    // fmul issues@2, dispatches 2, done 9; fadd done 17.
    EXPECT_EQ(cdcCycles(trace), 17u);
}

TEST(Cdc6600Sim, BranchBehavesLikeScoreboard)
{
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kAConst, A1),
    });
    EXPECT_EQ(cdcCycles(trace), 7u);    // same as ScoreboardSim
}

// ---- Tomasulo -------------------------------------------------------

TEST(TomasuloSim, WawRenamedAway)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),           // renamed: not blocked
        dyn(Op::kSMovS, S2, S1),        // reads the sconst instance
    });
    // load iss@0 disp 1 done 12; sconst iss@1 disp 2 done 3; smovs
    // iss@2 disp max(3, sconst done 3) = 3 done 4.  End 12.
    EXPECT_EQ(tomCycles(trace), 12u);
    // Blocking scoreboard: 13 (WAW stall).
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    EXPECT_EQ(cray.run(trace).cycles, 13u);
}

TEST(TomasuloSim, StationPoolLimitsInFlightOps)
{
    // Three loads park behind a fourth with only 1 station: fully
    // serialized issue.
    DynTrace trace("loads");
    for (int i = 0; i < 4; ++i)
        trace.append(dyn(Op::kLoadS, regS(1 + unsigned(i)), A1));
    // rs=1: station holds until broadcast; load_i issues at
    // ~i*(lat+2).  rs=4: loads pipeline a cycle apart.
    const ClockCycle tight = tomCycles(trace, 1, 1);
    const ClockCycle roomy = tomCycles(trace, 4, 1);
    EXPECT_LT(roomy, tight);
    // rs=4: loads dispatch 1,2,3,4 -> done 12,13,14,15.
    EXPECT_EQ(roomy, 15u);
}

TEST(TomasuloSim, SingleCdbSerializesBroadcasts)
{
    // Two independent fadds complete a cycle apart even with one
    // CDB (dispatch 1 and 2); force a conflict with equal-latency
    // ops dispatched the same cycle via distinct units.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S4, S5),     // disp 1, done 7
        dyn(Op::kSShL, S2, S6),         // shift: disp 2, done 4
        dyn(Op::kSAdd, S3, S6, S7),     // int add: disp 3, done 6
        dyn(Op::kSConst, S7),           // transfer: no CDB in model
    });
    const ClockCycle one = tomCycles(trace, 3, 1);
    // With one CDB no two results may share a cycle; with two CDBs
    // the same trace can only get faster (or equal).
    const ClockCycle two = tomCycles(trace, 3, 2);
    EXPECT_LE(two, one);
}

TEST(TomasuloSim, CdbConflictDelaysDispatch)
{
    // Two fadds dispatched 1 cycle apart complete 1 cycle apart: no
    // conflict.  An fadd and an sfix (same unit, same latency)
    // cannot even dispatch together (unit accepts 1/cycle), so
    // build the conflict across units: fadd (lat 6) at dispatch 1
    // completes 7; amul (lat 6) at dispatch 1 would also complete
    // 7 -> pushed to dispatch 2.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S4, S5),
        dyn(Op::kAMul, A2, A3, A4),
    });
    // fadd: iss 0, disp 1, done 7 (CDB@7).  amul: iss 1, disp 2
    // earliest (station latch) -> done 8: no conflict.  Hmm: latch
    // is issue+1 = 2, so completion 8.  To force the conflict the
    // second op must dispatch at 1 too -- impossible with in-order
    // single issue.  So instead check serial issue holds:
    EXPECT_EQ(tomCycles(trace), 8u);
}

TEST(TomasuloSim, Name)
{
    TomasuloSim sim({ 2, 1, BranchPolicy::kBlocking },
                    configM11BR5());
    EXPECT_EQ(sim.name(), "Tomasulo(rs=2, cdb=1)");
}

// ---- scheme ordering on the benchmark traces ------------------------

class SchemeLoop : public ::testing::TestWithParam<int>
{
};

TEST_P(SchemeLoop, Section33Ordering)
{
    // blocking scoreboard <= CDC 6600 (RAW unblocked) <= Tomasulo
    // (WAW also unblocked, more stations) -- with small tolerances
    // for second-order structural interactions.
    const DynTrace &trace =
        TraceLibrary::instance().trace(GetParam());
    const MachineConfig cfg = configM11BR5();

    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    Cdc6600Sim cdc({}, cfg);
    TomasuloSim tom({ 3, 1, BranchPolicy::kBlocking }, cfg);

    const double r_cray = cray.run(trace).issueRate();
    const double r_cdc = cdc.run(trace).issueRate();
    const double r_tom = tom.run(trace).issueRate();

    EXPECT_GE(r_cdc, r_cray * 0.98) << "CDC vs blocking";
    EXPECT_GE(r_tom, r_cdc * 0.98) << "Tomasulo vs CDC";
}

TEST_P(SchemeLoop, GenerousTomasuloApproachesSingleIssueRuu)
{
    // With many stations and busses, Tomasulo's scheduling freedom
    // matches a 1-wide RUU with a comparable window (the RUU's
    // extra constraint -- in-order retirement -- costs little at
    // width 1; its unified window helps; tolerate 20% each way).
    const DynTrace &trace =
        TraceLibrary::instance().trace(GetParam());
    const MachineConfig cfg = configM11BR5();
    TomasuloSim tom({ 8, 4, BranchPolicy::kBlocking }, cfg);
    RuuSim ruu({ 1, 50, BusKind::kPerUnit }, cfg);
    const double r_tom = tom.run(trace).issueRate();
    const double r_ruu = ruu.run(trace).issueRate();
    EXPECT_GT(r_tom, r_ruu * 0.8);
    EXPECT_LT(r_tom, r_ruu * 1.45);
}

INSTANTIATE_TEST_SUITE_P(AllLoops, SchemeLoop,
                         ::testing::Range(1, 15));

} // namespace
} // namespace mfusim
