/**
 * @file
 * Harness tests: experiment runner, loop classes, paper data tables.
 */

#include <gtest/gtest.h>

#include "mfusim/core/stats.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/paper_data.hh"
#include "mfusim/sim/scoreboard_sim.hh"

namespace mfusim
{
namespace
{

SimFactory
crayFactory()
{
    return [](const MachineConfig &cfg) {
        return std::unique_ptr<Simulator>(
            new ScoreboardSim(ScoreboardConfig::crayLike(), cfg));
    };
}

TEST(Harness, LoopClassMembership)
{
    EXPECT_EQ(loopsOf(LoopClass::kScalar).size(), 5u);
    EXPECT_EQ(loopsOf(LoopClass::kVectorizable).size(), 9u);
    EXPECT_STREQ(loopClassName(LoopClass::kScalar), "Scalar");
    EXPECT_STREQ(loopClassName(LoopClass::kVectorizable),
                 "Vectorizable");
}

TEST(Harness, PerLoopRatesMatchLoopCount)
{
    const auto rates = perLoopRates(
        crayFactory(), loopsOf(LoopClass::kScalar), configM11BR5());
    EXPECT_EQ(rates.size(), 5u);
    for (double r : rates) {
        EXPECT_GT(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
}

TEST(Harness, MeanIsHarmonicMeanOfPerLoopRates)
{
    const auto rates = perLoopRates(
        crayFactory(), loopsOf(LoopClass::kScalar), configM11BR5());
    const double mean =
        meanIssueRate(crayFactory(), LoopClass::kScalar,
                      configM11BR5());
    EXPECT_DOUBLE_EQ(mean, harmonicMean(rates));
}

TEST(Harness, AllConfigsReturnsFourMeans)
{
    const auto means =
        meanIssueRateAllConfigs(crayFactory(), LoopClass::kScalar);
    ASSERT_EQ(means.size(), 4u);
    // M5BR2 (index 3) is the most generous configuration.
    EXPECT_GE(means[3], means[0]);
}

TEST(PaperData, Table1SpotChecks)
{
    using namespace paper;
    EXPECT_DOUBLE_EQ(table1(LoopClass::kScalar, kSimple, 0), 0.24);
    EXPECT_DOUBLE_EQ(table1(LoopClass::kScalar, kCrayLike, 3), 0.55);
    EXPECT_DOUBLE_EQ(table1(LoopClass::kVectorizable, kSimple, 0),
                     0.21);
    EXPECT_DOUBLE_EQ(table1(LoopClass::kVectorizable, kCrayLike, 3),
                     0.59);
}

TEST(PaperData, Table1OrderingHoldsInPublishedData)
{
    // The published numbers themselves satisfy the machine ordering
    // our property tests assert for the reproduction.
    for (int cls = 0; cls < 2; ++cls) {
        const LoopClass lc = cls == 0 ? LoopClass::kScalar
                                      : LoopClass::kVectorizable;
        for (int cfg = 0; cfg < 4; ++cfg) {
            EXPECT_LE(paper::table1(lc, paper::kSimple, cfg),
                      paper::table1(lc, paper::kSerialMemory, cfg));
            EXPECT_LE(paper::table1(lc, paper::kSerialMemory, cfg),
                      paper::table1(lc, paper::kNonSegmented, cfg));
            EXPECT_LE(paper::table1(lc, paper::kNonSegmented, cfg),
                      paper::table1(lc, paper::kCrayLike, cfg));
        }
    }
}

TEST(PaperData, Table2SpotChecks)
{
    const auto pure_scalar =
        paper::table2(false, LoopClass::kScalar, 0);
    EXPECT_DOUBLE_EQ(pure_scalar.pseudo, 1.34);
    EXPECT_DOUBLE_EQ(pure_scalar.resource, 4.66);
    EXPECT_DOUBLE_EQ(pure_scalar.actual, 1.29);
    const auto serial_vector =
        paper::table2(true, LoopClass::kVectorizable, 3);
    EXPECT_DOUBLE_EQ(serial_vector.actual, 1.09);
}

TEST(PaperData, Table2ActualNeverExceedsComponents)
{
    for (int serial = 0; serial < 2; ++serial) {
        for (int cls = 0; cls < 2; ++cls) {
            const LoopClass lc = cls == 0 ? LoopClass::kScalar
                                          : LoopClass::kVectorizable;
            for (int cfg = 0; cfg < 4; ++cfg) {
                const auto row = paper::table2(serial != 0, lc, cfg);
                EXPECT_LE(row.actual, row.pseudo + 1e-9);
                EXPECT_LE(row.actual, row.resource + 1e-9);
            }
        }
    }
}

TEST(PaperData, SequentialTablesSpotChecks)
{
    EXPECT_DOUBLE_EQ(paper::table3_4(LoopClass::kScalar, 0, 1, false),
                     0.44);
    EXPECT_DOUBLE_EQ(paper::table3_4(LoopClass::kScalar, 3, 8, false),
                     0.61);
    EXPECT_DOUBLE_EQ(
        paper::table3_4(LoopClass::kVectorizable, 0, 1, true), 0.45);
}

TEST(PaperData, Station1MatchesTable1CrayLike)
{
    // The paper's own cross-table consistency: one issue station is
    // the CRAY-like machine.
    for (int cls = 0; cls < 2; ++cls) {
        const LoopClass lc = cls == 0 ? LoopClass::kScalar
                                      : LoopClass::kVectorizable;
        for (int cfg = 0; cfg < 4; ++cfg) {
            EXPECT_DOUBLE_EQ(paper::table3_4(lc, cfg, 1, false),
                             paper::table1(lc, paper::kCrayLike, cfg));
            EXPECT_DOUBLE_EQ(paper::table5_6(lc, cfg, 1, true),
                             paper::table1(lc, paper::kCrayLike, cfg));
        }
    }
}

TEST(PaperData, RuuTableSpotChecks)
{
    EXPECT_EQ(paper::ruuSizes()[0], 10);
    EXPECT_EQ(paper::ruuSizes()[5], 100);
    // Single issue unit, RUU 40, M11BR5: the 0.72 quoted in the
    // paper's section 3.3 / 5.3 discussion.
    EXPECT_DOUBLE_EQ(paper::table7_8(LoopClass::kScalar, 0, 3, 1,
                                     false),
                     0.72);
    // Vectorizable best case: 4 units, RUU 100, M5BR2 -> 2.01.
    EXPECT_DOUBLE_EQ(paper::table7_8(LoopClass::kVectorizable, 3, 5,
                                     4, false),
                     2.01);
}

TEST(PaperData, RuuOneBusNeverExceedsNBus)
{
    for (int cls = 0; cls < 2; ++cls) {
        const LoopClass lc = cls == 0 ? LoopClass::kScalar
                                      : LoopClass::kVectorizable;
        for (int cfg = 0; cfg < 4; ++cfg) {
            for (int size = 0; size < 6; ++size) {
                for (int units = 1; units <= 4; ++units) {
                    EXPECT_LE(
                        paper::table7_8(lc, cfg, size, units, true),
                        paper::table7_8(lc, cfg, size, units, false) +
                            1e-9);
                }
            }
        }
    }
}

} // namespace
} // namespace mfusim
