/**
 * @file
 * Functional unit, memory port, and FU pool timing tests.
 */

#include <gtest/gtest.h>

#include "mfusim/funits/fu_pool.hh"

namespace mfusim
{
namespace
{

TEST(FunctionalUnit, SegmentedAcceptsEveryCycle)
{
    FunctionalUnit fu(FuDiscipline::kSegmented);
    EXPECT_TRUE(fu.canAccept(0));
    fu.accept(0, 7);
    EXPECT_FALSE(fu.canAccept(0));
    EXPECT_TRUE(fu.canAccept(1));
    fu.accept(1, 7);
    EXPECT_EQ(fu.nextFree(), 2u);
}

TEST(FunctionalUnit, NonSegmentedBusyForFullLatency)
{
    FunctionalUnit fu(FuDiscipline::kNonSegmented);
    fu.accept(0, 7);
    EXPECT_FALSE(fu.canAccept(6));
    EXPECT_TRUE(fu.canAccept(7));
    fu.accept(7, 2);
    EXPECT_EQ(fu.nextFree(), 9u);
}

TEST(FunctionalUnit, ResetClearsState)
{
    FunctionalUnit fu(FuDiscipline::kNonSegmented);
    fu.accept(0, 14);
    fu.reset();
    EXPECT_TRUE(fu.canAccept(0));
}

TEST(MemoryPort, SerialOccupiesFullLatency)
{
    MemoryPort mem(MemDiscipline::kSerial, 11);
    EXPECT_EQ(mem.accept(0), 11u);
    EXPECT_FALSE(mem.canAccept(10));
    EXPECT_TRUE(mem.canAccept(11));
    EXPECT_EQ(mem.accept(11), 22u);
}

TEST(MemoryPort, InterleavedPipelines)
{
    MemoryPort mem(MemDiscipline::kInterleaved, 11);
    EXPECT_EQ(mem.accept(0), 11u);
    EXPECT_TRUE(mem.canAccept(1));
    EXPECT_EQ(mem.accept(1), 12u);
    EXPECT_FALSE(mem.canAccept(1));
}

TEST(MemoryPort, LatencyFollowsConstruction)
{
    MemoryPort fast(MemDiscipline::kInterleaved, 5);
    EXPECT_EQ(fast.accept(3), 8u);
    EXPECT_EQ(fast.latency(), 5u);
}

TEST(FuPool, RoutesOpsToDistinctUnits)
{
    FuPool pool({ FuDiscipline::kNonSegmented,
                  MemDiscipline::kInterleaved },
                configM11BR5());
    // An fadd makes the FP add unit busy but not the multiplier.
    pool.accept(Op::kFAdd, 0);
    EXPECT_FALSE(pool.canAccept(Op::kFSub, 3));     // same unit
    EXPECT_TRUE(pool.canAccept(Op::kFMul, 3));      // different unit
    EXPECT_TRUE(pool.canAccept(Op::kAAdd, 0));
}

TEST(FuPool, AcceptReturnsResultTime)
{
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved },
                configM11BR5());
    EXPECT_EQ(pool.accept(Op::kFAdd, 10), 16u);
    EXPECT_EQ(pool.accept(Op::kFMul, 10), 17u);
    EXPECT_EQ(pool.accept(Op::kLoadS, 10), 21u);
    EXPECT_EQ(pool.accept(Op::kFRecip, 10), 24u);
}

TEST(FuPool, TransfersNeverContend)
{
    FuPool pool({ FuDiscipline::kNonSegmented,
                  MemDiscipline::kSerial },
                configM11BR5());
    EXPECT_EQ(pool.accept(Op::kSMovA, 0), 1u);
    EXPECT_TRUE(pool.canAccept(Op::kSConst, 0));
    EXPECT_EQ(pool.accept(Op::kSConst, 0), 1u);
}

TEST(FuPool, MemoryDisciplineHonored)
{
    FuPool serial({ FuDiscipline::kSegmented, MemDiscipline::kSerial },
                  configM11BR5());
    serial.accept(Op::kLoadS, 0);
    EXPECT_EQ(serial.earliestAccept(Op::kStoreS, 0), 11u);

    FuPool inter({ FuDiscipline::kSegmented,
                   MemDiscipline::kInterleaved },
                 configM11BR5());
    inter.accept(Op::kLoadS, 0);
    EXPECT_EQ(inter.earliestAccept(Op::kStoreS, 0), 1u);
}

TEST(FuPool, SfixSharesFpAddUnit)
{
    FuPool pool({ FuDiscipline::kNonSegmented,
                  MemDiscipline::kInterleaved },
                configM11BR5());
    pool.accept(Op::kSFix, 0);
    EXPECT_EQ(pool.earliestAccept(Op::kFAdd, 0), 6u);
}

TEST(FuPool, ResetClearsAllUnits)
{
    FuPool pool({ FuDiscipline::kNonSegmented,
                  MemDiscipline::kSerial },
                configM11BR5());
    pool.accept(Op::kFAdd, 0);
    pool.accept(Op::kLoadS, 0);
    pool.reset();
    EXPECT_TRUE(pool.canAccept(Op::kFAdd, 0));
    EXPECT_TRUE(pool.canAccept(Op::kLoadS, 0));
}

TEST(FuPool, MemoryLatencyFromConfig)
{
    FuPool pool({ FuDiscipline::kSegmented,
                  MemDiscipline::kInterleaved },
                configM5BR5());
    EXPECT_EQ(pool.accept(Op::kLoadS, 0), 5u);
}

} // namespace
} // namespace mfusim
