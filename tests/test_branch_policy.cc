/**
 * @file
 * Branch-policy extension tests: golden timings for BTFN and oracle
 * prediction on all three issue organizations, plus ordering
 * properties across the benchmark traces.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/interpreter.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

DynOp
branch(bool taken, bool backward)
{
    DynOp op = dyn(Op::kBrANZ, kNoReg, A0, kNoReg, taken);
    op.backward = backward;
    return op;
}

TEST(BranchPolicy, Names)
{
    EXPECT_STREQ(branchPolicyName(BranchPolicy::kBlocking),
                 "blocking");
    EXPECT_STREQ(branchPolicyName(BranchPolicy::kBtfn), "btfn");
    EXPECT_STREQ(branchPolicyName(BranchPolicy::kOracle), "oracle");
}

TEST(BranchPolicy, BtfnPredicts)
{
    EXPECT_TRUE(btfnCorrect(/*backward=*/true, /*taken=*/true));
    EXPECT_TRUE(btfnCorrect(false, false));
    EXPECT_FALSE(btfnCorrect(true, false));
    EXPECT_FALSE(btfnCorrect(false, true));
}

TEST(BranchPolicy, InterpreterMarksBackwardBranches)
{
    Assembler as;
    as.aconst(A0, 2);
    const auto loop = as.here();
    as.aaddi(A0, A0, -1);
    as.branz(loop);             // backward
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 8);
    const DynTrace trace = interp.run("t");
    for (const DynOp &op : trace.ops()) {
        if (isBranch(op.op)) {
            EXPECT_TRUE(op.backward);
        }
    }

    Assembler fw;
    const auto skip = fw.newLabel();
    fw.aconst(A0, 0);
    fw.braz(skip);              // forward
    fw.aconst(A1, 1);
    fw.bind(skip);
    fw.halt();
    Program p2 = fw.finish();
    Interpreter interp2(p2, 8);
    const DynTrace trace2 = interp2.run("t");
    EXPECT_FALSE(trace2[1].backward);
}

TEST(BranchPolicy, ScoreboardOracleRemovesBranchWall)
{
    // aconst A0 (ready 1); branch; aconst A1.
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        branch(true, true),
        dyn(Op::kAConst, A1),
    });
    const MachineConfig cfg = configM11BR5();

    ScoreboardConfig blocking = ScoreboardConfig::crayLike();
    // Blocking: branch at 1, next at 6, done 7.
    EXPECT_EQ(ScoreboardSim(blocking, cfg).run(trace).cycles, 7u);

    ScoreboardConfig oracle = ScoreboardConfig::crayLike();
    oracle.branchPolicy = BranchPolicy::kOracle;
    // Oracle: branch at 1 (one slot), next at 2, done 3.
    EXPECT_EQ(ScoreboardSim(oracle, cfg).run(trace).cycles, 3u);
}

TEST(BranchPolicy, ScoreboardBtfnMatchesOracleWhenCorrect)
{
    const DynTrace correct = traceOf({
        dyn(Op::kAConst, A0),
        branch(/*taken=*/true, /*backward=*/true),  // predicted right
        dyn(Op::kAConst, A1),
    });
    const DynTrace wrong = traceOf({
        dyn(Op::kAConst, A0),
        branch(/*taken=*/false, /*backward=*/true), // predicted wrong
        dyn(Op::kAConst, A1),
    });
    const MachineConfig cfg = configM11BR5();
    ScoreboardConfig btfn = ScoreboardConfig::crayLike();
    btfn.branchPolicy = BranchPolicy::kBtfn;

    EXPECT_EQ(ScoreboardSim(btfn, cfg).run(correct).cycles, 3u);
    // Mispredicted: behaves like blocking -> 7.
    EXPECT_EQ(ScoreboardSim(btfn, cfg).run(wrong).cycles, 7u);
}

TEST(BranchPolicy, OracleBranchDoesNotWaitForCondition)
{
    // The condition comes from a load (ready 11); oracle branch
    // must not wait for it.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadA, A0, A1),
        branch(true, true),
        dyn(Op::kAConst, A2),
    });
    const MachineConfig cfg = configM11BR5();
    ScoreboardConfig oracle = ScoreboardConfig::crayLike();
    oracle.branchPolicy = BranchPolicy::kOracle;
    // load@0 (done 11), branch@1, aconst@2 done 3 -> end 11.
    EXPECT_EQ(ScoreboardSim(oracle, cfg).run(trace).cycles, 11u);
}

TEST(BranchPolicy, MultiIssueOracleKeepsWindowAcrossTakenBranch)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(true, true),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    const MachineConfig cfg = configM11BR5();
    // Blocking: squash + floor -> 6 (see MultiIssueSim tests).
    MultiIssueSim blocking({ 4, false, BusKind::kPerUnit, false },
                           cfg);
    EXPECT_EQ(blocking.run(trace).cycles, 6u);
    // Oracle: all four in one window; sconsts at 0, branch at 0,
    // the rest at 0 -> done 1.
    MultiIssueSim oracle({ 4, false, BusKind::kPerUnit, false,
                           BranchPolicy::kOracle },
                         cfg);
    EXPECT_EQ(oracle.run(trace).cycles, 1u);
}

TEST(BranchPolicy, MultiIssueMispredictSquashesBuffer)
{
    // Backward branch that falls through: BTFN predicts taken ->
    // mispredict -> squash and pay the branch time.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(/*taken=*/false, /*backward=*/true),
        dyn(Op::kSConst, S2),
    });
    const MachineConfig cfg = configM11BR5();
    MultiIssueSim btfn({ 4, false, BusKind::kPerUnit, false,
                         BranchPolicy::kBtfn },
                       cfg);
    // sconst@0, branch@0 (A0 ready), floor 5, S2@5 -> done 6.
    EXPECT_EQ(btfn.run(trace).cycles, 6u);
}

TEST(BranchPolicy, RuuOracleKeepsInserting)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        branch(true, true),
        dyn(Op::kSConst, S2),
    });
    const MachineConfig cfg = configM11BR5();
    // Blocking: sconst ins@0; branch waits nothing (A0 ready),
    // blocks until 5; S2 ins@5, disp 6, result 7, commit 7.
    RuuSim blocking({ 4, 10, BusKind::kPerUnit }, cfg);
    EXPECT_EQ(blocking.run(trace).cycles, 7u);
    // Oracle: all three consumed at cycle 0 (branch takes a slot);
    // dispatch at 1, results 2, commits 2.
    RuuSim oracle({ 4, 10, BusKind::kPerUnit,
                    BranchPolicy::kOracle },
                  cfg);
    EXPECT_EQ(oracle.run(trace).cycles, 2u);
}

// ---- properties over the benchmark traces --------------------------

class PolicyLoop : public ::testing::TestWithParam<int>
{
};

TEST_P(PolicyLoop, OracleAtLeastBtfnAtLeastBlocking)
{
    const DynTrace &trace =
        TraceLibrary::instance().trace(GetParam());
    const MachineConfig cfg = configM11BR5();
    const auto rate = [&](BranchPolicy policy) {
        RuuConfig org{ 4, 48, BusKind::kPerUnit, policy };
        RuuSim sim(org, cfg);
        return sim.run(trace).issueRate();
    };
    const double blocking = rate(BranchPolicy::kBlocking);
    const double btfn = rate(BranchPolicy::kBtfn);
    const double oracle = rate(BranchPolicy::kOracle);
    // Speculation inserts younger work earlier, and a greedily
    // dispatched younger op can occupy a functional unit or bus the
    // cycle before an older (critical-path) op wakes -- a Graham
    // list-scheduling anomaly, real in speculative machines too.
    // So per-loop rates may dip a few percent below blocking; they
    // must never collapse.
    EXPECT_GE(btfn, blocking * 0.95);
    EXPECT_GE(oracle, btfn * 0.97);
    EXPECT_GE(oracle, blocking * 0.95);
}

TEST_P(PolicyLoop, BtfnIsAccurateOnLoopCode)
{
    // Loop-closing backward branches dominate these kernels, so the
    // static predictor should be right most of the time.
    const TraceStats stats =
        TraceLibrary::instance().trace(GetParam()).stats();
    EXPECT_GT(stats.btfnAccuracy(), 0.80) << "loop " << GetParam();
}

TEST_P(PolicyLoop, OracleStillBelowDataflowLimitMinusBranches)
{
    // Even with free branches, issue rate cannot exceed the issue
    // width.
    const DynTrace &trace =
        TraceLibrary::instance().trace(GetParam());
    RuuSim oracle({ 4, 100, BusKind::kPerUnit, BranchPolicy::kOracle },
                  configM11BR5());
    EXPECT_LE(oracle.run(trace).issueRate(), 4.0);
}

INSTANTIATE_TEST_SUITE_P(AllLoops, PolicyLoop,
                         ::testing::Range(1, 15));

} // namespace
} // namespace mfusim
