/**
 * @file
 * Randomized-trace robustness tests.
 *
 * Seeded pseudo-random traces (arbitrary hazard mixes, branches at
 * arbitrary positions, dense register reuse) are run through every
 * simulator and the limit analyzers, checking the model invariants
 * that must hold for *any* trace, not just compiled loop code:
 *
 *  - every simulator terminates and yields a positive finite rate;
 *  - no machine beats the pure dataflow limit;
 *  - WAW-blocking machines respect the serial limit;
 *  - width-1 buffer issue == the CRAY-like scoreboard;
 *  - organizational orderings (Simple lowest; N-Bus >= 1-Bus);
 *  - serialization round trips.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "mfusim/core/error.hh"
#include "mfusim/core/trace_io.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/sim/cdc6600_sim.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/tomasulo_sim.hh"

namespace mfusim
{
namespace
{

/** Small deterministic PRNG (xorshift64*). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed) : state_(seed | 1) {}

    std::uint64_t
    next()
    {
        state_ ^= state_ >> 12;
        state_ ^= state_ << 25;
        state_ ^= state_ >> 27;
        return state_ * 0x2545f4914f6cdd1dull;
    }

    /** Uniform in [0, bound). */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    bool
    chance(unsigned percent)
    {
        return below(100) < percent;
    }

  private:
    std::uint64_t state_;
};

/**
 * A random but *well-formed* trace: operand classes respect the
 * ISA, branches carry outcomes, and the stream is a plausible
 * single path (no wrong-path ops).
 */
DynTrace
randomTrace(std::uint64_t seed, std::size_t length)
{
    Rng rng(seed);
    DynTrace trace("fuzz" + std::to_string(seed));

    const auto rand_s = [&rng] { return regS(unsigned(rng.below(8))); };
    const auto rand_a = [&rng] { return regA(unsigned(rng.below(8))); };

    for (std::size_t i = 0; i < length; ++i) {
        DynOp op;
        const unsigned kind = unsigned(rng.below(100));
        if (kind < 25) {                        // memory
            if (rng.chance(70))
                op = { Op::kLoadS, rand_s(), rand_a(), kNoReg, 0,
                       false, false };
            else
                op = { Op::kStoreS, kNoReg, rand_a(), rand_s(), 0,
                       false, false };
        } else if (kind < 40) {                 // fp add path
            op = { rng.chance(50) ? Op::kFAdd : Op::kFSub, rand_s(),
                   rand_s(), rand_s(), 0, false, false };
        } else if (kind < 50) {                 // fp multiply
            op = { Op::kFMul, rand_s(), rand_s(), rand_s(), 0, false,
                   false };
        } else if (kind < 54) {                 // reciprocal
            op = { Op::kFRecip, rand_s(), rand_s(), kNoReg, 0, false,
                   false };
        } else if (kind < 70) {                 // address arithmetic
            op = { rng.chance(50) ? Op::kAAdd : Op::kASub, rand_a(),
                   rand_a(), rand_a(), 0, false, false };
        } else if (kind < 80) {                 // logical / shift
            op = { rng.chance(50) ? Op::kSAnd : Op::kSXor, rand_s(),
                   rand_s(), rand_s(), 0, false, false };
        } else if (kind < 90) {                 // transfers
            op = { rng.chance(50) ? Op::kSConst : Op::kSMovA,
                   rand_s(),
                   rng.chance(50) ? kNoReg : rand_a(), kNoReg, 0,
                   false, false };
            if (op.op == Op::kSConst)
                op.srcA = kNoReg;
        } else {                                // branch
            op = { Op::kBrANZ, kNoReg, A0, kNoReg,
                   StaticIndex(rng.below(64)), rng.chance(60),
                   rng.chance(70) };
        }
        trace.append(op);
    }
    return trace;
}

class FuzzTrace : public ::testing::TestWithParam<int>
{
  protected:
    DynTrace trace_ = randomTrace(0xabcd0000u + unsigned(GetParam()),
                                  400 + 37 * unsigned(GetParam()));
};

TEST_P(FuzzTrace, AllSimulatorsTerminateWithSaneRates)
{
    for (const MachineConfig &cfg : standardConfigs()) {
        SimpleSim simple(cfg);
        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        Cdc6600Sim cdc({}, cfg);
        TomasuloSim tom({ 3, 1, BranchPolicy::kBlocking }, cfg);
        MultiIssueSim ooo({ 4, true, BusKind::kPerUnit, false }, cfg);
        RuuSim ruu({ 2, 20, BusKind::kPerUnit }, cfg);

        for (Simulator *sim :
             std::initializer_list<Simulator *>{
                 &simple, &cray, &cdc, &tom, &ooo, &ruu }) {
            const SimResult r = sim->run(trace_);
            EXPECT_EQ(r.instructions, trace_.size());
            EXPECT_GT(r.cycles, 0u) << sim->name();
            EXPECT_GT(r.issueRate(), 0.0) << sim->name();
            EXPECT_LE(r.issueRate(), 4.0) << sim->name();
        }
    }
}

TEST_P(FuzzTrace, DataflowLimitDominatesEverything)
{
    const MachineConfig cfg = configM11BR5();
    const double bound =
        computeLimits(trace_, cfg, false).actualRate + 1e-9;

    SimpleSim simple(cfg);
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    MultiIssueSim ooo({ 8, true, BusKind::kCrossbar, false }, cfg);
    RuuSim ruu({ 4, 100, BusKind::kPerUnit }, cfg);

    EXPECT_LE(simple.run(trace_).issueRate(), bound);
    EXPECT_LE(cray.run(trace_).issueRate(), bound);
    EXPECT_LE(ooo.run(trace_).issueRate(), bound);
    EXPECT_LE(ruu.run(trace_).issueRate(), bound);
}

TEST_P(FuzzTrace, SerialLimitBoundsWawBlockingMachines)
{
    const MachineConfig cfg = configM11BR2();
    const double bound =
        computeLimits(trace_, cfg, true).actualRate + 1e-9;
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    MultiIssueSim ooo({ 8, true, BusKind::kPerUnit, false }, cfg);
    EXPECT_LE(cray.run(trace_).issueRate(), bound);
    EXPECT_LE(ooo.run(trace_).issueRate(), bound);
}

TEST_P(FuzzTrace, WidthOneEqualsScoreboard)
{
    for (const MachineConfig &cfg : standardConfigs()) {
        MultiIssueSim multi({ 1, false, BusKind::kSingle, false },
                            cfg);
        ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
        EXPECT_EQ(multi.run(trace_).cycles, cray.run(trace_).cycles)
            << cfg.name();
    }
}

TEST_P(FuzzTrace, MachineOrdering)
{
    const MachineConfig cfg = configM5BR5();
    SimpleSim simple(cfg);
    ScoreboardSim serial(ScoreboardConfig::serialMemory(), cfg);
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    const double r_simple = simple.run(trace_).issueRate();
    const double r_serial = serial.run(trace_).issueRate();
    const double r_cray = cray.run(trace_).issueRate();
    EXPECT_LE(r_simple, r_serial + 1e-12);
    EXPECT_LE(r_serial, r_cray + 1e-12);
}

TEST_P(FuzzTrace, BusOrdering)
{
    const MachineConfig cfg = configM11BR5();
    for (unsigned w : { 2u, 4u }) {
        MultiIssueSim nbus({ w, true, BusKind::kPerUnit, false },
                           cfg);
        MultiIssueSim onebus({ w, true, BusKind::kSingle, false },
                             cfg);
        MultiIssueSim xbar({ w, true, BusKind::kCrossbar, false },
                           cfg);
        const double r_n = nbus.run(trace_).issueRate();
        const double r_1 = onebus.run(trace_).issueRate();
        const double r_x = xbar.run(trace_).issueRate();
        EXPECT_GE(r_n, r_1 - 1e-12) << "w=" << w;
        EXPECT_GE(r_x, r_n - 1e-12) << "w=" << w;
    }
}

TEST_P(FuzzTrace, SerializationRoundTrips)
{
    std::stringstream buffer;
    saveTrace(buffer, trace_);
    const DynTrace loaded = loadTrace(buffer);
    ASSERT_EQ(loaded.size(), trace_.size());
    // Timing must be identical on the round-tripped trace.
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    EXPECT_EQ(cray.run(trace_).cycles, cray.run(loaded).cycles);
}

TEST_P(FuzzTrace, RuuMonotoneInBuffering)
{
    const MachineConfig cfg = configM11BR5();
    RuuSim small({ 2, 8, BusKind::kPerUnit }, cfg);
    RuuSim large({ 2, 64, BusKind::kPerUnit }, cfg);
    EXPECT_GE(large.run(trace_).issueRate(),
              small.run(trace_).issueRate() * 0.98);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTrace, ::testing::Range(0, 25));

// ---- corrupted-input corpus --------------------------------------------
//
// loadTrace() must never crash, hang, or throw anything but
// TraceError, whatever bytes it is fed.  Each helper returns true if
// the input parsed (some corruptions are benign), false if it threw
// TraceError; anything else propagates and fails the test.

bool
loadSurvives(const std::string &text)
{
    std::istringstream in(text);
    try {
        loadTrace(in);
        return true;
    } catch (const TraceError &) {
        return false;
    }
}

TEST(CorruptTraces, TruncationsAlwaysRejectOrParse)
{
    std::stringstream buffer;
    saveTrace(buffer, randomTrace(0xfeed, 120));
    const std::string whole = buffer.str();
    for (std::size_t len = 0; len < whole.size();
         len += 1 + len / 8) {
        loadSurvives(whole.substr(0, len));
    }
    // A clean truncation at a line boundary is an op-count mismatch.
    const std::size_t cut = whole.find('\n', whole.size() / 2);
    ASSERT_NE(cut, std::string::npos);
    EXPECT_FALSE(loadSurvives(whole.substr(0, cut + 1)));
}

TEST(CorruptTraces, ByteFlipsNeverEscapeTraceError)
{
    std::stringstream buffer;
    saveTrace(buffer, randomTrace(0xbeef, 80));
    const std::string whole = buffer.str();
    Rng rng(0x51ab);
    for (int trial = 0; trial < 400; ++trial) {
        std::string mutated = whole;
        const std::size_t pos = rng.below(mutated.size());
        switch (rng.below(3)) {
          case 0:
            mutated[pos] = char(rng.below(256));
            break;
          case 1:
            mutated[pos] ^= char(1u << rng.below(7));
            break;
          default:
            mutated.erase(pos, 1 + rng.below(9));
            break;
        }
        loadSurvives(mutated);
    }
}

TEST(CorruptTraces, HugeOpCountsRejectedBeforeAllocation)
{
    // A corrupted header count must throw, not reserve gigabytes.
    const std::string body = "mfusim-trace v1\nname x\nops ";
    EXPECT_FALSE(loadSurvives(body + "999999999999\n"));
    EXPECT_FALSE(loadSurvives(body + "18446744073709551615\n"));
    EXPECT_FALSE(loadSurvives(body + "99999999999999999999999999\n"));
    EXPECT_FALSE(loadSurvives(body + "-3\n"));
    EXPECT_FALSE(loadSurvives(body + "12abc\n"));
}

TEST(CorruptTraces, StrictFieldValidation)
{
    const std::string header = "mfusim-trace v1\nname x\nops 1\n";
    // Non-branch ops must carry "- -" outcome fields.
    EXPECT_FALSE(
        loadSurvives(header + "fadd S1 S2 S3 0 T F 0\n"));
    // Branches must carry T|N and B|F.
    EXPECT_FALSE(
        loadSurvives(header + "branz -- A0 -- 0 - - 0\n"));
    // Vector length is 8-bit.
    EXPECT_FALSE(
        loadSurvives(header + "fadd S1 S2 S3 0 - - 300\n"));
    // Register indices are bounded.
    EXPECT_FALSE(
        loadSurvives(header + "fadd S99 S2 S3 0 - - 0\n"));
    // Extra ops beyond the header count are rejected.
    EXPECT_FALSE(loadSurvives(header + "fadd S1 S2 S3 0 - - 0\n" +
                              "fadd S1 S2 S3 0 - - 0\n"));
    // The well-formed version parses.
    EXPECT_TRUE(loadSurvives(header + "fadd S1 S2 S3 0 - - 0\n"));
}

} // namespace
} // namespace mfusim
