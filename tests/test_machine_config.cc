/**
 * @file
 * Machine configuration preset tests.
 */

#include <gtest/gtest.h>

#include "mfusim/core/machine_config.hh"

namespace mfusim
{
namespace
{

TEST(MachineConfig, Presets)
{
    EXPECT_EQ(configM11BR5().memLatency, 11u);
    EXPECT_EQ(configM11BR5().branchTime, 5u);
    EXPECT_EQ(configM11BR2().memLatency, 11u);
    EXPECT_EQ(configM11BR2().branchTime, 2u);
    EXPECT_EQ(configM5BR5().memLatency, 5u);
    EXPECT_EQ(configM5BR5().branchTime, 5u);
    EXPECT_EQ(configM5BR2().memLatency, 5u);
    EXPECT_EQ(configM5BR2().branchTime, 2u);
}

TEST(MachineConfig, NamesUsePaperNotation)
{
    EXPECT_EQ(configM11BR5().name(), "M11BR5");
    EXPECT_EQ(configM11BR2().name(), "M11BR2");
    EXPECT_EQ(configM5BR5().name(), "M5BR5");
    EXPECT_EQ(configM5BR2().name(), "M5BR2");
}

TEST(MachineConfig, StandardConfigsOrderMatchesPaperTables)
{
    const auto &configs = standardConfigs();
    ASSERT_EQ(configs.size(), 4u);
    EXPECT_EQ(configs[0], configM11BR5());
    EXPECT_EQ(configs[1], configM11BR2());
    EXPECT_EQ(configs[2], configM5BR5());
    EXPECT_EQ(configs[3], configM5BR2());
}

TEST(MachineConfig, Equality)
{
    EXPECT_TRUE(configM11BR5() == configM11BR5());
    EXPECT_FALSE(configM11BR5() == configM5BR5());
    EXPECT_FALSE(configM11BR5() == configM11BR2());
}

} // namespace
} // namespace mfusim
