/**
 * @file
 * PersistentCache: journal round-trips, torn/corrupt-tail recovery,
 * version invalidation, compaction, injected I/O failures, and the
 * restart-warm bit-identity guarantee through ResultCache.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <unistd.h>

#include "mfusim/core/faultpoint.hh"
#include "mfusim/harness/spec_parse.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/serve/persist_cache.hh"
#include "mfusim/serve/result_cache.hh"

// Tests that need a probe to actually fire cannot run when the
// probes are compiled down to constant false.
#ifdef MFUSIM_NO_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() \
    GTEST_SKIP() << "built with MFUSIM_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#endif

namespace mfusim
{
namespace
{

class PersistCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        FaultRegistry::instance().reset();
        char pattern[] = "/tmp/mfusim_persist_XXXXXX";
        ASSERT_NE(::mkdtemp(pattern), nullptr);
        dir_ = pattern;
    }

    void TearDown() override
    {
        FaultRegistry::instance().reset();
        ResultCache::instance().detachPersist();
        ResultCache::instance().clear();
        ResultCache::instance().setVersion("in-process");
        std::remove((dir_ + "/results.mfuj").c_str());
        std::remove((dir_ + "/results.mfuj.tmp").c_str());
        ::rmdir(dir_.c_str());
    }

    /** Reopen the journal and collect everything it recovers. */
    PersistLoadStats
    recover(const std::string &version,
            std::unordered_map<std::string, SimResult> *out)
    {
        PersistentCache journal(dir_);
        return journal.open(
            version, [out](std::string key, const SimResult &r) {
                out->emplace(std::move(key), r);
            });
    }

    std::string journalPath() const { return dir_ + "/results.mfuj"; }

    std::string dir_;
};

SimResult
sampleResult(std::uint64_t seed)
{
    SimResult r;
    r.instructions = 1000 + seed;
    r.cycles = 500 + seed * 3;
    r.stalls.raw = seed;
    r.stalls.waw = seed + 1;
    r.stalls.structural = seed + 2;
    r.stalls.resultBus = seed + 3;
    r.stalls.branch = seed + 4;
    r.hasStalls = true;
    r.steadyOpsSkipped = seed * 7;
    return r;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.stalls.raw, b.stalls.raw);
    EXPECT_EQ(a.stalls.waw, b.stalls.waw);
    EXPECT_EQ(a.stalls.structural, b.stalls.structural);
    EXPECT_EQ(a.stalls.resultBus, b.stalls.resultBus);
    EXPECT_EQ(a.stalls.branch, b.stalls.branch);
    EXPECT_EQ(a.hasStalls, b.hasStalls);
    EXPECT_EQ(a.steadyOpsSkipped, b.steadyOpsSkipped);
}

TEST_F(PersistCacheTest, RoundTripIsBitIdentical)
{
    {
        PersistentCache journal(dir_);
        journal.open("v1", [](std::string, const SimResult &) {});
        for (std::uint64_t i = 0; i < 5; ++i)
            EXPECT_TRUE(journal.append("key" + std::to_string(i),
                                       sampleResult(i)));
        EXPECT_EQ(journal.stats().appends, 5u);
        EXPECT_EQ(journal.stats().appendErrors, 0u);
    }
    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("v1", &warm);
    EXPECT_EQ(load.recovered, 5u);
    EXPECT_EQ(load.discardedCorrupt, 0u);
    EXPECT_EQ(load.discardedVersion, 0u);
    EXPECT_EQ(load.truncatedBytes, 0u);
    EXPECT_FALSE(load.loadFailed);
    ASSERT_EQ(warm.size(), 5u);
    for (std::uint64_t i = 0; i < 5; ++i)
        expectSameResult(warm.at("key" + std::to_string(i)),
                         sampleResult(i));
}

TEST_F(PersistCacheTest, TornTailIsTruncatedNotParsed)
{
    {
        PersistentCache journal(dir_);
        journal.open("v1", [](std::string, const SimResult &) {});
        journal.append("a", sampleResult(1));
        journal.append("b", sampleResult(2));
    }
    // Simulate a SIGKILL mid-append: a few bytes of a record header
    // land on disk and nothing else.
    const char torn[] = { 'M', 'F', 'U', 'R', 0x40 };
    {
        std::ofstream f(journalPath(),
                        std::ios::binary | std::ios::app);
        f.write(torn, sizeof(torn));
    }
    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("v1", &warm);
    EXPECT_EQ(load.recovered, 2u);
    EXPECT_EQ(load.truncatedBytes, sizeof(torn));
    EXPECT_EQ(warm.size(), 2u);
    expectSameResult(warm.at("a"), sampleResult(1));

    // The tail was physically removed: a second recovery is clean.
    std::unordered_map<std::string, SimResult> again;
    const PersistLoadStats reload = recover("v1", &again);
    EXPECT_EQ(reload.recovered, 2u);
    EXPECT_EQ(reload.truncatedBytes, 0u);
}

TEST_F(PersistCacheTest, ChecksumFailureDiscardsTheRecord)
{
    std::uint64_t goodSize = 0;
    {
        PersistentCache journal(dir_);
        journal.open("v1", [](std::string, const SimResult &) {});
        journal.append("a", sampleResult(1));
        goodSize = journal.stats().fileBytes;
        journal.append("b", sampleResult(2));
    }
    // Corrupt one payload byte of the last record (its
    // steadyOpsSkipped field is a small number, so 0x5a is a flip).
    {
        std::fstream f(journalPath(),
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(-2, std::ios::end);
        const char byte = 0x5a;
        f.write(&byte, 1);
    }
    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("v1", &warm);
    EXPECT_EQ(load.recovered, 1u);
    EXPECT_EQ(load.discardedCorrupt, 1u);
    EXPECT_GT(load.truncatedBytes, 0u);
    ASSERT_EQ(warm.size(), 1u);
    expectSameResult(warm.at("a"), sampleResult(1));

    // The corrupt record is gone from disk, not skipped over.
    std::unordered_map<std::string, SimResult> again;
    PersistentCache journal(dir_);
    const PersistLoadStats reload = journal.open(
        "v1", [&again](std::string key, const SimResult &r) {
            again.emplace(std::move(key), r);
        });
    EXPECT_EQ(reload.recovered, 1u);
    EXPECT_EQ(reload.discardedCorrupt, 0u);
    EXPECT_EQ(journal.stats().fileBytes, goodSize);
}

TEST_F(PersistCacheTest, VersionMismatchWipesTheFile)
{
    {
        PersistentCache journal(dir_);
        journal.open("build-A", [](std::string, const SimResult &) {});
        journal.append("a", sampleResult(1));
    }
    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("build-B", &warm);
    EXPECT_EQ(load.recovered, 0u);
    EXPECT_EQ(load.discardedVersion, 1u);
    EXPECT_GT(load.truncatedBytes, 0u);
    EXPECT_TRUE(warm.empty());

    // The wiped journal is immediately usable under the new version.
    {
        PersistentCache journal(dir_);
        journal.open("build-B", [](std::string, const SimResult &) {});
        EXPECT_TRUE(journal.append("b", sampleResult(2)));
    }
    std::unordered_map<std::string, SimResult> again;
    EXPECT_EQ(recover("build-B", &again).recovered, 1u);
    expectSameResult(again.at("b"), sampleResult(2));
}

TEST_F(PersistCacheTest, GarbageFileIsWiped)
{
    {
        std::ofstream f(journalPath(), std::ios::binary);
        f << "this is not a journal at all, not even close";
    }
    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("v1", &warm);
    EXPECT_EQ(load.recovered, 0u);
    EXPECT_EQ(load.discardedVersion, 1u);
    EXPECT_TRUE(warm.empty());
}

TEST_F(PersistCacheTest, InjectedTornWriteIsCountedAndCompactable)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    PersistentCache journal(dir_);
    journal.open("v1", [](std::string, const SimResult &) {});
    ASSERT_TRUE(journal.append("a", sampleResult(1)));

    FaultRegistry::instance().configure("persist.write:torn:once");
    EXPECT_FALSE(journal.append("b", sampleResult(2)));
    FaultRegistry::instance().reset();
    EXPECT_EQ(journal.stats().appendErrors, 1u);
    EXPECT_GT(journal.stats().deadBytes, 0u);
    ASSERT_TRUE(journal.append("c", sampleResult(3)));

    // Compaction rewrites exactly the live set, shedding the torn
    // bytes (the record appended after the torn one would otherwise
    // be unreachable behind the corruption).
    EXPECT_TRUE(journal.compactNow([] {
        return std::vector<std::pair<std::string, SimResult>>{
            { "a", sampleResult(1) },
            { "b", sampleResult(2) },
            { "c", sampleResult(3) },
        };
    }));
    EXPECT_EQ(journal.stats().deadBytes, 0u);
    EXPECT_EQ(journal.stats().compactions, 1u);

    std::unordered_map<std::string, SimResult> warm;
    const PersistLoadStats load = recover("v1", &warm);
    EXPECT_EQ(load.recovered, 3u);
    EXPECT_EQ(load.discardedCorrupt, 0u);
    expectSameResult(warm.at("b"), sampleResult(2));
}

TEST_F(PersistCacheTest, InjectedFsyncFailureIsAbsorbed)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    PersistentCache::Options opts;
    opts.fsyncEvery = 1;
    PersistentCache journal(dir_, opts);
    journal.open("v1", [](std::string, const SimResult &) {});
    FaultRegistry::instance().configure("persist.fsync:once");
    EXPECT_TRUE(journal.append("a", sampleResult(1)));
    EXPECT_EQ(journal.stats().fsyncErrors, 1u);
    FaultRegistry::instance().reset();
    EXPECT_TRUE(journal.append("b", sampleResult(2)));
    EXPECT_GE(journal.stats().fsyncs, 1u);
}

TEST_F(PersistCacheTest, MaybeCompactTriggersOnDeadBytes)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    PersistentCache::Options opts;
    opts.compactMinBytes = 1;       // no size floor for the test
    opts.compactCheckEvery = 1;     // check on every call
    PersistentCache journal(dir_, opts);
    journal.open("v1", [](std::string, const SimResult &) {});
    ASSERT_TRUE(journal.append("a", sampleResult(1)));

    const auto snapshot = [] {
        return std::vector<std::pair<std::string, SimResult>>{
            { "a", sampleResult(1) },
        };
    };
    // No dead bytes yet: the heuristic declines.
    EXPECT_FALSE(journal.maybeCompact(snapshot));

    // Tear enough writes that dead bytes dominate the file.
    FaultRegistry::instance().configure("persist.write:torn");
    for (int i = 0; i < 8; ++i)
        journal.append("junk" + std::to_string(i), sampleResult(9));
    FaultRegistry::instance().reset();
    EXPECT_TRUE(journal.maybeCompact(snapshot));
    EXPECT_EQ(journal.stats().compactions, 1u);
    EXPECT_EQ(journal.stats().deadBytes, 0u);

    std::unordered_map<std::string, SimResult> warm;
    EXPECT_EQ(recover("v1", &warm).recovered, 1u);
}

TEST_F(PersistCacheTest, InjectedCompactFailureLeavesJournalUsable)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    PersistentCache journal(dir_);
    journal.open("v1", [](std::string, const SimResult &) {});
    ASSERT_TRUE(journal.append("a", sampleResult(1)));
    FaultRegistry::instance().configure("persist.compact:once");
    EXPECT_FALSE(journal.compactNow([] {
        return std::vector<std::pair<std::string, SimResult>>{};
    }));
    FaultRegistry::instance().reset();
    EXPECT_EQ(journal.stats().compactErrors, 1u);
    EXPECT_TRUE(journal.append("b", sampleResult(2)));

    std::unordered_map<std::string, SimResult> warm;
    EXPECT_EQ(recover("v1", &warm).recovered, 2u);
}

TEST_F(PersistCacheTest, RestartWarmIsBitIdenticalToRecompute)
{
    // End-to-end through ResultCache with a real simulation: a
    // daemon restart must answer warm with the exact bits a cold
    // recompute would produce.
    const MachineConfig cfg = configM11BR5();
    auto sim = parseMachineSpec("ruu:4:50", cfg);
    const std::string machineKey = sim->cacheKey();
    ASSERT_FALSE(machineKey.empty());
    const auto simulate = [&] {
        return parseMachineSpec("ruu:4:50", cfg)->run(
            TraceLibrary::instance().decoded(3, cfg));
    };
    const SimResult fresh = simulate();

    ResultCache &cache = ResultCache::instance();
    cache.clear();
    cache.setVersion("test-build");
    cache.attachPersist(std::make_unique<PersistentCache>(dir_));
    bool hit = true;
    const SimResult computed = cache.getOrCompute(
        machineKey, "LL3", cfg, false, simulate, &hit);
    EXPECT_FALSE(hit);
    expectSameResult(computed, fresh);

    // "Restart": drop every in-memory entry, then re-attach the
    // journal the first process wrote.
    cache.detachPersist();
    cache.clear();
    const PersistLoadStats load = cache.attachPersist(
        std::make_unique<PersistentCache>(dir_));
    EXPECT_EQ(load.recovered, 1u);

    hit = false;
    const SimResult warm = cache.getOrCompute(
        machineKey, "LL3", cfg, false,
        [&]() -> SimResult {
            ADD_FAILURE() << "warm restart must not recompute";
            return simulate();
        },
        &hit);
    EXPECT_TRUE(hit);
    expectSameResult(warm, fresh);
}

TEST_F(PersistCacheTest, InjectedLoadFailureStartsCold)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    {
        PersistentCache journal(dir_);
        journal.open("test-build",
                     [](std::string, const SimResult &) {});
        journal.append("a", sampleResult(1));
    }
    ResultCache &cache = ResultCache::instance();
    cache.clear();
    cache.setVersion("test-build");
    FaultRegistry::instance().configure("persist.load:once");
    const PersistLoadStats load = cache.attachPersist(
        std::make_unique<PersistentCache>(dir_));
    FaultRegistry::instance().reset();
    EXPECT_TRUE(load.loadFailed);
    EXPECT_EQ(cache.stats().entries, 0u);
    // The journal stays attached and usable for appends.
    ASSERT_NE(cache.persist(), nullptr);
    cache.store("m", "LL1", configM11BR5(), false, sampleResult(5));
    EXPECT_GE(cache.persist()->stats().appends, 1u);
}

} // namespace
} // namespace mfusim
