/**
 * @file
 * DecodedTrace: every decoded field must equal the trait lookup it
 * caches, for every op of every Livermore trace under all four
 * machine configurations, and running a simulator on the decoded
 * form must give exactly the run(DynTrace) result.
 */

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace mfusim
{
namespace
{

class DecodedTraceAllLoops
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    int loopId() const { return std::get<0>(GetParam()); }

    const MachineConfig &
    config() const
    {
        return standardConfigs()[std::size_t(std::get<1>(GetParam()))];
    }
};

TEST_P(DecodedTraceAllLoops, FieldsMatchTraitLookups)
{
    const DynTrace &trace = TraceLibrary::instance().trace(loopId());
    const MachineConfig &cfg = config();
    const DecodedTrace decoded(trace, cfg);

    ASSERT_EQ(decoded.size(), trace.size());
    EXPECT_EQ(decoded.name(), trace.name());
    EXPECT_TRUE(decoded.config() == cfg);

    std::array<std::uint32_t, kNumRegs> last_writer;
    last_writer.fill(DecodedTrace::kNoProducer);

    bool any_vector = false;
    const auto &ops = trace.ops();
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const DynOp &op = ops[i];
        ASSERT_EQ(decoded.op(i), op.op) << "op " << i;
        EXPECT_EQ(decoded.fu(i), traitsOf(op.op).fu) << "op " << i;
        EXPECT_EQ(decoded.latency(i), latencyOf(op.op, cfg))
            << "op " << i;
        EXPECT_EQ(decoded.occupancy(i), vectorOccupancy(op))
            << "op " << i;
        EXPECT_EQ(decoded.isBranch(i), isBranch(op.op)) << "op " << i;
        EXPECT_EQ(decoded.isVector(i), isVector(op.op)) << "op " << i;
        EXPECT_EQ(decoded.isMemory(i),
                  traitsOf(op.op).fu == FuClass::kMemory)
            << "op " << i;
        EXPECT_EQ(decoded.isTransfer(i),
                  traitsOf(op.op).fu == FuClass::kTransfer)
            << "op " << i;
        EXPECT_EQ(decoded.producesResult(i), producesResult(op.op))
            << "op " << i;
        EXPECT_EQ(decoded.taken(i), op.taken) << "op " << i;
        EXPECT_EQ(decoded.btfnCorrect(i),
                  btfnCorrect(op.backward, op.taken))
            << "op " << i;
        EXPECT_EQ(decoded.dst(i), op.dst) << "op " << i;
        EXPECT_EQ(decoded.srcA(i), op.srcA) << "op " << i;
        EXPECT_EQ(decoded.srcB(i), op.srcB) << "op " << i;

        // Dependence links against an independent recomputation.
        const std::uint32_t expectA = op.srcA == kNoReg
            ? DecodedTrace::kNoProducer : last_writer[op.srcA];
        const std::uint32_t expectB = op.srcB == kNoReg
            ? DecodedTrace::kNoProducer : last_writer[op.srcB];
        const std::uint32_t expectW = op.dst == kNoReg
            ? DecodedTrace::kNoProducer : last_writer[op.dst];
        EXPECT_EQ(decoded.prodA(i), expectA) << "op " << i;
        EXPECT_EQ(decoded.prodB(i), expectB) << "op " << i;
        EXPECT_EQ(decoded.prevWriter(i), expectW) << "op " << i;
        if (op.dst != kNoReg)
            last_writer[op.dst] = std::uint32_t(i);

        any_vector = any_vector || isVector(op.op);
    }
    EXPECT_EQ(decoded.hasVector(), any_vector);
}

TEST_P(DecodedTraceAllLoops, StatsMatchDynTrace)
{
    const DynTrace &trace = TraceLibrary::instance().trace(loopId());
    const DecodedTrace decoded(trace, config());

    const TraceStats expect = trace.stats();
    const TraceStats &got = decoded.stats();
    EXPECT_EQ(got.totalOps, expect.totalOps);
    EXPECT_EQ(got.parcels, expect.parcels);
    EXPECT_EQ(got.branches, expect.branches);
    EXPECT_EQ(got.takenBranches, expect.takenBranches);
    EXPECT_EQ(got.btfnCorrectBranches, expect.btfnCorrectBranches);
    EXPECT_EQ(got.loads, expect.loads);
    EXPECT_EQ(got.stores, expect.stores);
    EXPECT_EQ(got.vectorOps, expect.vectorOps);
    EXPECT_EQ(got.vectorElements, expect.vectorElements);
    for (unsigned fu = 0; fu < kNumFuClasses; ++fu) {
        EXPECT_EQ(got.perFu[fu], expect.perFu[fu]) << "fu " << fu;
        EXPECT_EQ(got.vectorOpsPerFu[fu], expect.vectorOpsPerFu[fu])
            << "fu " << fu;
        EXPECT_EQ(got.vectorElementsPerFu[fu],
                  expect.vectorElementsPerFu[fu])
            << "fu " << fu;
    }
}

TEST_P(DecodedTraceAllLoops, SimulatorsMatchDynTracePath)
{
    // run(DynTrace) decodes internally, so both paths must agree
    // cycle for cycle.
    const DynTrace &trace = TraceLibrary::instance().trace(loopId());
    const MachineConfig &cfg = config();
    const DecodedTrace decoded(trace, cfg);

    {
        ScoreboardSim sim(ScoreboardConfig::crayLike(), cfg);
        EXPECT_EQ(sim.run(trace).cycles, sim.run(decoded).cycles);
    }
    {
        MultiIssueSim sim({ 4, true, BusKind::kPerUnit, false }, cfg);
        EXPECT_EQ(sim.run(trace).cycles, sim.run(decoded).cycles);
    }
    {
        RuuSim sim({ 2, 20, BusKind::kPerUnit }, cfg);
        EXPECT_EQ(sim.run(trace).cycles, sim.run(decoded).cycles);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLoopsAllConfigs, DecodedTraceAllLoops,
    ::testing::Combine(::testing::Range(1, 15),
                       ::testing::Range(0, 4)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) + "_" +
            standardConfigs()[std::size_t(std::get<1>(info.param))]
                .name();
    });

TEST(DecodedTrace, ConfigMismatchThrows)
{
    const DynTrace &trace = TraceLibrary::instance().trace(1);
    const DecodedTrace decoded(trace, configM11BR5());
    SimpleSim sim(configM5BR2());
    EXPECT_THROW(sim.run(decoded), ConfigError);
}

TEST(DecodedTrace, LibraryCacheReturnsSameObject)
{
    const DecodedTrace &a =
        TraceLibrary::instance().decoded(3, configM11BR5());
    const DecodedTrace &b =
        TraceLibrary::instance().decoded(3, configM11BR5());
    EXPECT_EQ(&a, &b);
    const DecodedTrace &c =
        TraceLibrary::instance().decoded(3, configM5BR2());
    EXPECT_NE(&a, &c);
}

} // namespace
} // namespace mfusim
