/**
 * @file
 * RUU machine golden tests: renaming, RUU-size stalls, in-order
 * commit, branch stalls, and bus-capacity limits.
 */

#include <gtest/gtest.h>

#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

ClockCycle
cyclesOn(const RuuConfig &org, const MachineConfig &cfg,
         const DynTrace &trace)
{
    RuuSim sim(org, cfg);
    return sim.run(trace).cycles;
}

TEST(RuuSim, SingleOpPipeline)
{
    // Insert at 0, dispatch at 1, result at 2, commit at 2.
    const DynTrace trace = traceOf({ dyn(Op::kSConst, S1) });
    EXPECT_EQ(cyclesOn({ 1, 10, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              2u);
}

TEST(RuuSim, RenamingRemovesWawStall)
{
    // Scoreboard blocks the sconst on the load's register
    // reservation; the RUU renames S1 and never stalls it.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
    });
    const MachineConfig cfg = configM11BR5();
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    // Scoreboard: sconst at 11, smovs at 12, done 13.
    EXPECT_EQ(cray.run(trace).cycles, 13u);
    // RUU (width 4, so all inserted at cycle 0): load dispatches 1
    // (result 12); sconst dispatches 1 (result 2); smovs reads the
    // renamed S1 instance (the sconst), dispatches 2 (result 3);
    // commits wait for the load at the head: 12, then both at 12.
    EXPECT_EQ(cyclesOn({ 4, 12, BusKind::kPerUnit }, cfg, trace), 12u);
}

TEST(RuuSim, RawStillHonored)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
    });
    // Load inserted 0, dispatched 1, result 12; fadd dispatches 12,
    // result 18; commits 12 and 18.
    EXPECT_EQ(cyclesOn({ 4, 12, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              18u);
}

TEST(RuuSim, TinyRuuSerializes)
{
    // One slot: insert/dispatch/commit must fully drain per op.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    // op0: insert 0, dispatch 1, result/commit 2; op1: insert 2,
    // dispatch 3, commit 4; op2: insert 4 ... commit 6.
    EXPECT_EQ(cyclesOn({ 1, 1, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              6u);
}

TEST(RuuSim, BiggerRuuToleratesSlowMemory)
{
    // Repeated [load + filler] groups: with a small RUU the
    // in-order head blocks on each load and the next load cannot
    // even enter, serializing the memory latencies; a large RUU
    // keeps many loads in flight.
    DynTrace trace("loadwall");
    for (int it = 0; it < 10; ++it) {
        trace.append(dyn(Op::kLoadS, S1, A1));
        for (int i = 0; i < 7; ++i)
            trace.append(dyn(Op::kSConst, regS(2 + unsigned(i) % 6)));
    }
    const MachineConfig cfg = configM11BR5();
    const ClockCycle small =
        cyclesOn({ 4, 8, BusKind::kPerUnit }, cfg, trace);
    const ClockCycle big =
        cyclesOn({ 4, 40, BusKind::kPerUnit }, cfg, trace);
    EXPECT_LT(big, small);
}

TEST(RuuSim, CommitIsInOrder)
{
    // The cheap op behind a slow load cannot retire before it; end
    // time is governed by the load's commit.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S2),
    });
    // Load result at 12; both commit at 12.
    EXPECT_EQ(cyclesOn({ 2, 10, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              12u);
}

TEST(RuuSim, BranchStallsIssueUntilConditionReady)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadA, A0, A1),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kSConst, S1),
    });
    // Load inserted 0, dispatched 1, A0 at 12.  Branch waits at the
    // issue stage until 12, blocks until 17.  sconst inserted 17,
    // dispatched 18, result 19, commit 19.
    EXPECT_EQ(cyclesOn({ 4, 10, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              19u);
    // Fast branch: blocked until 14; sconst commits at 16.
    EXPECT_EQ(cyclesOn({ 4, 10, BusKind::kPerUnit }, configM11BR2(),
                       trace),
              16u);
}

TEST(RuuSim, OneBusDispatchesOnePerCycle)
{
    // Four independent 1-cycle ops, width 4.
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
        dyn(Op::kSConst, S4),
    });
    // N-Bus: all inserted at 0, all dispatched at 1, results 2, all
    // commit at 2.
    EXPECT_EQ(cyclesOn({ 4, 8, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              2u);
    // 1-Bus: dispatches at 1,2,3,4 -> results 2,3,4,5; commits
    // (1/cycle) at 2,3,4,5.
    EXPECT_EQ(cyclesOn({ 4, 8, BusKind::kSingle }, configM11BR5(),
                       trace),
              5u);
}

TEST(RuuSim, StructuralFuConflictDelaysDispatch)
{
    // Two fadds, width 2 N-Bus: the segmented FP add unit accepts
    // one per cycle, so the second dispatches a cycle later.
    const DynTrace trace = traceOf({
        dyn(Op::kFAdd, S1, S3, S4),
        dyn(Op::kFAdd, S2, S5, S6),
    });
    // Dispatch 1 and 2; results 7 and 8; commits 7, 8.
    EXPECT_EQ(cyclesOn({ 2, 8, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              8u);
}

TEST(RuuSim, WidthLimitsInsertionRate)
{
    // Eight independent ops, plenty of RUU: width 1 inserts one per
    // cycle; width 4 inserts four per cycle.
    DynTrace trace("eight");
    for (int i = 0; i < 8; ++i)
        trace.append(dyn(Op::kSConst, regS(unsigned(i))));
    const MachineConfig cfg = configM11BR5();
    const ClockCycle w1 =
        cyclesOn({ 1, 16, BusKind::kPerUnit }, cfg, trace);
    const ClockCycle w4 =
        cyclesOn({ 4, 16, BusKind::kPerUnit }, cfg, trace);
    EXPECT_LT(w4, w1);
}

TEST(RuuSim, BypassMakesResultUsableSameCycleItExists)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
    });
    // sconst: insert 0, dispatch 1, result 2.  smovs: insert 0,
    // wakes the cycle the result exists (2), result 3; commits 2, 3.
    EXPECT_EQ(cyclesOn({ 2, 8, BusKind::kPerUnit }, configM11BR5(),
                       trace),
              3u);
}

TEST(RuuSim, EmptyTrace)
{
    RuuSim sim({ 2, 10, BusKind::kPerUnit }, configM11BR5());
    EXPECT_EQ(sim.run(traceOf({})).cycles, 0u);
}

TEST(RuuSim, Name)
{
    RuuSim sim({ 3, 30, BusKind::kSingle }, configM11BR5());
    EXPECT_EQ(sim.name(), "RUU(w=3, size=30, 1-Bus)");
}

} // namespace
} // namespace mfusim
