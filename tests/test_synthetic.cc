/**
 * @file
 * Synthetic workload tests: analytic limits and machine responses
 * for each controlled dependence structure.
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/synthetic.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/dataflow/trace_analysis.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

namespace mfusim
{
namespace
{

using namespace synthetic;

TEST(Synthetic, ChainIsWidthOne)
{
    const DynTrace trace = chain(100);
    const WidthProfile profile =
        widthProfile(trace, configM11BR5());
    EXPECT_EQ(profile.peakWidth, 1u);
    // Pseudo-dataflow: 100 fadds x 6 cycles = 600.
    const LimitResult limit = computeLimits(trace, configM11BR5());
    EXPECT_EQ(limit.pseudoCycles, 600u);
    EXPECT_DOUBLE_EQ(limit.pseudoRate, 100.0 / 600.0);
}

TEST(Synthetic, ChainDefeatsEveryMachine)
{
    // No machine can beat 1/latency on a serial chain; the RUU gets
    // close to it.
    const DynTrace trace = chain(200);
    RuuSim ruu({ 4, 64, BusKind::kPerUnit }, configM11BR5());
    const double rate = ruu.run(trace).issueRate();
    EXPECT_LE(rate, 1.0 / 6.0 + 1e-9);
    EXPECT_GT(rate, 1.0 / 6.0 * 0.9);
}

TEST(Synthetic, IndependentOpsAreThroughputBound)
{
    const DynTrace trace = independent(300);
    // Resource limit: 300 ops on the FP add unit = 300 + 6 cycles.
    const LimitResult limit = computeLimits(trace, configM11BR5());
    EXPECT_EQ(limit.resourceCycles, 306u);
    EXPECT_NEAR(limit.actualRate, 300.0 / 306.0, 1e-9);
    // The RUU approaches 1/cycle.
    RuuSim ruu({ 2, 40, BusKind::kPerUnit }, configM11BR5());
    EXPECT_GT(ruu.run(trace).issueRate(), 0.85);
}

TEST(Synthetic, TreeHasLogDepth)
{
    const DynTrace trace = reductionTree(8);
    // 8 loads + 4 + 2 + 1 fadds = 15 ops.
    EXPECT_EQ(trace.size(), 15u);
    // Critical path: load (11) + 3 fadd levels (18) = 29.
    const LimitResult limit = computeLimits(trace, configM11BR5());
    EXPECT_EQ(limit.pseudoCycles, 29u);
    const WidthProfile profile =
        widthProfile(trace, configM11BR5());
    EXPECT_EQ(profile.peakWidth, 8u);
}

TEST(Synthetic, WawStormSeparatesRenamingFromBlocking)
{
    const DynTrace trace = wawStorm(200);
    const MachineConfig cfg = configM11BR5();
    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    RuuSim ruu({ 2, 40, BusKind::kPerUnit }, cfg);
    const double blocking_rate = cray.run(trace).issueRate();
    const double renamed_rate = ruu.run(trace).issueRate();
    // Blocking: every logical op waits out the previous multiply's
    // 7-cycle register reservation; renaming runs at unit speed.
    EXPECT_LT(blocking_rate, 0.35);
    EXPECT_GT(renamed_rate, 0.75);
    EXPECT_GT(renamed_rate, blocking_rate * 2.5);
}

TEST(Synthetic, MemoryStreamBoundByPort)
{
    const DynTrace trace = memoryStream(300, 70);
    // Interleaved port: 1 ref/cycle max.
    ScoreboardSim cray(ScoreboardConfig::crayLike(), configM11BR5());
    EXPECT_LE(cray.run(trace).issueRate(), 1.0);
    // Serial memory: ~ 1 ref / 11 cycles.
    ScoreboardSim serial(ScoreboardConfig::serialMemory(),
                         configM11BR5());
    const double serial_rate = serial.run(trace).issueRate();
    EXPECT_NEAR(serial_rate, 1.0 / 11.0, 0.01);
}

TEST(Synthetic, MemoryStreamComposition)
{
    const TraceStats stats = memoryStream(1000, 70).stats();
    EXPECT_EQ(stats.loads, 700u);
    EXPECT_EQ(stats.stores, 300u);
}

TEST(Synthetic, LoopPatternIsBranchGated)
{
    const DynTrace trace = loopPattern(6, 50);
    const TraceStats stats = trace.stats();
    EXPECT_EQ(stats.branches, 50u);
    EXPECT_EQ(stats.takenBranches, 49u);
    // Dataflow: per iteration the decrement (2) + branch (5) chain
    // gates the next iteration: 7 cycles per iteration.
    const LimitResult limit = computeLimits(trace, configM11BR5());
    EXPECT_NEAR(limit.pseudoRate, 8.0 / 7.0, 0.02);
    // With a fast branch the gate shrinks to 2 + 2.
    const LimitResult fast = computeLimits(trace, configM11BR2());
    EXPECT_NEAR(fast.pseudoRate, 8.0 / 4.0, 0.06);
}

TEST(Synthetic, ChainOfEveryTwoSrcOpClass)
{
    for (const Op op : { Op::kFAdd, Op::kFMul, Op::kSAdd,
                         Op::kSAnd }) {
        const DynTrace trace = chain(50, op);
        const LimitResult limit =
            computeLimits(trace, configM11BR5());
        const unsigned lat = latencyOf(op, configM11BR5());
        EXPECT_EQ(limit.pseudoCycles, 50u * lat)
            << mnemonicOf(op);
    }
}

} // namespace
} // namespace mfusim
