/**
 * @file
 * Batched lockstep sweep kernel coverage (sim/batched.hh).
 *
 *  - Bit identity: every covered sim (Simple, Scoreboard orgs,
 *    in-order MultiIssue widths x bus kinds) batched over the Table
 *    1/3 latency axis and the organization axes matches the scalar
 *    path on every Livermore loop, with the steady-state fast path
 *    on and off — every SimResult field, including steadyOpsSkipped.
 *  - The covered groups really run the lockstep kernels
 *    (lockstepLanes > 0), and uncovered lanes (audited, out-of-order
 *    issue, single-cell batches, structurally different traces) fall
 *    back to the scalar path with identical results.
 *  - An audited lane inside a batch produces the same timing as the
 *    plain path and a complete event stream (the Auditor accepts it).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mfusim/core/decoded_trace.hh"
#include "mfusim/core/machine_config.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/audit.hh"
#include "mfusim/sim/batched.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"
#include "mfusim/sim/steady_state.hh"

namespace mfusim
{
namespace
{

class SteadyGuard
{
  public:
    explicit SteadyGuard(bool on) : prev_(steadyStateEnabled())
    {
        setSteadyStateEnabled(on);
    }
    ~SteadyGuard() { setSteadyStateEnabled(prev_); }

  private:
    bool prev_;
};

void
expectSameResult(const SimResult &got, const SimResult &want,
                 const std::string &what)
{
    EXPECT_EQ(got.instructions, want.instructions) << what;
    EXPECT_EQ(got.cycles, want.cycles) << what;
    EXPECT_EQ(got.steadyOpsSkipped, want.steadyOpsSkipped) << what;
    ASSERT_EQ(got.hasStalls, want.hasStalls) << what;
    if (want.hasStalls) {
        EXPECT_EQ(got.stalls.raw, want.stalls.raw) << what;
        EXPECT_EQ(got.stalls.waw, want.stalls.waw) << what;
        EXPECT_EQ(got.stalls.structural, want.stalls.structural)
            << what;
        EXPECT_EQ(got.stalls.resultBus, want.stalls.resultBus)
            << what;
        EXPECT_EQ(got.stalls.branch, want.stalls.branch) << what;
    }
}

/**
 * The sweep variants one batch advances over a single loop: the full
 * Table 1/3 latency axis (all standard configs) for each machine
 * organization.  Mirrors how runGrid / the table benches batch.
 */
struct Variant
{
    std::unique_ptr<Simulator> sim;
    const DecodedTrace *trace;
    std::string label;
};

std::vector<Variant>
sweepVariants(int loop)
{
    std::vector<Variant> v;
    TraceLibrary &lib = TraceLibrary::instance();
    for (const MachineConfig &cfg : standardConfigs()) {
        const DecodedTrace &trace = lib.decoded(loop, cfg);
        v.push_back({ std::make_unique<SimpleSim>(cfg), &trace,
                      "Simple/" + cfg.name() });
        for (const auto &org :
             { ScoreboardConfig::serialMemory(),
               ScoreboardConfig::nonSegmented(),
               ScoreboardConfig::crayLike() }) {
            v.push_back(
                { std::make_unique<ScoreboardSim>(org, cfg), &trace,
                  "Scoreboard/" + cfg.name() });
        }
        for (const unsigned width : { 2u, 4u, 8u }) {
            for (const BusKind bus :
                 { BusKind::kPerUnit, BusKind::kSingle }) {
                v.push_back(
                    { std::make_unique<MultiIssueSim>(
                          MultiIssueConfig{ width, false, bus },
                          cfg),
                      &trace,
                      "SeqIssue(w=" + std::to_string(width) + ")/" +
                          cfg.name() });
            }
        }
    }
    return v;
}

// ---- bit identity: covered sims x loops x axes, steady on/off ---------

class BatchedBitIdentity
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{};

TEST_P(BatchedBitIdentity, MatchesScalarPath)
{
    const int loop = std::get<0>(GetParam());
    SteadyGuard steady(std::get<1>(GetParam()));

    std::vector<Variant> variants = sweepVariants(loop);
    std::vector<BatchLane> lanes;
    for (const Variant &v : variants)
        lanes.push_back({ v.sim.get(), v.trace });
    const BatchOutcome out = runBatch(lanes);

    ASSERT_EQ(out.results.size(), variants.size());
    // Every covered lane must actually take a lockstep kernel: the
    // library loops are scalar and each (kind, loop) group holds >= 2
    // lanes.
    EXPECT_EQ(out.lockstepLanes, variants.size());
    EXPECT_EQ(out.scalarLanes, 0u);

    std::vector<Variant> fresh = sweepVariants(loop);
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const SimResult scalar = fresh[i].sim->run(*fresh[i].trace);
        expectSameResult(out.results[i], scalar, variants[i].label);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllLoops, BatchedBitIdentity,
    ::testing::Combine(::testing::Range(1, 15), ::testing::Bool()),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) +
            (std::get<1>(info.param) ? "_steady" : "_plain");
    });

// ---- fallback lanes ---------------------------------------------------

TEST(BatchedSweep, SingleCellBatchTakesScalarPath)
{
    const MachineConfig cfg = standardConfigs()[0];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(3, cfg);
    ScoreboardSim sim(ScoreboardConfig::crayLike(), cfg);
    const BatchOutcome out = runBatch({ { &sim, &trace } });
    EXPECT_EQ(out.lockstepLanes, 0u);
    EXPECT_EQ(out.scalarLanes, 1u);

    ScoreboardSim fresh(ScoreboardConfig::crayLike(), cfg);
    expectSameResult(out.results.at(0), fresh.run(trace),
                     "single-cell");
}

TEST(BatchedSweep, OutOfOrderLanesFallBackScalar)
{
    const MachineConfig cfg = standardConfigs()[0];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(5, cfg);
    MultiIssueSim ooo1(MultiIssueConfig{ 4, true }, cfg);
    MultiIssueSim ooo2(MultiIssueConfig{ 8, true }, cfg);
    MultiIssueSim seq1(MultiIssueConfig{ 4, false }, cfg);
    MultiIssueSim seq2(MultiIssueConfig{ 8, false }, cfg);
    const BatchOutcome out = runBatch({ { &ooo1, &trace },
                                        { &ooo2, &trace },
                                        { &seq1, &trace },
                                        { &seq2, &trace } });
    EXPECT_EQ(out.lockstepLanes, 2u);
    EXPECT_EQ(out.scalarLanes, 2u);

    for (const unsigned width : { 4u, 8u }) {
        for (const bool ooo : { true, false }) {
            MultiIssueSim fresh(MultiIssueConfig{ width, ooo }, cfg);
            const std::size_t idx =
                (ooo ? 0 : 2) + (width == 8 ? 1 : 0);
            expectSameResult(out.results.at(idx), fresh.run(trace),
                             "w=" + std::to_string(width) +
                                 (ooo ? " ooo" : " seq"));
        }
    }
}

TEST(BatchedSweep, AuditedLaneFallsBackScalarWithCleanAudit)
{
    const MachineConfig cfg = standardConfigs()[0];
    const DecodedTrace &trace =
        TraceLibrary::instance().decoded(7, cfg);

    ScoreboardSim audited(ScoreboardConfig::crayLike(), cfg);
    ScoreboardSim plain1(ScoreboardConfig::crayLike(), cfg);
    ScoreboardSim plain2(ScoreboardConfig::serialMemory(), cfg);
    Auditor auditor(trace, audited.auditRules(), audited.name());
    audited.attachAudit(&auditor);

    const BatchOutcome out = runBatch({ { &audited, &trace },
                                        { &plain1, &trace },
                                        { &plain2, &trace } });
    audited.attachAudit(nullptr);
    EXPECT_EQ(out.lockstepLanes, 2u);
    EXPECT_EQ(out.scalarLanes, 1u);
    EXPECT_NO_THROW(auditor.finish());
    EXPECT_EQ(out.results.at(0).steadyOpsSkipped, 0u);

    ScoreboardSim fresh(ScoreboardConfig::crayLike(), cfg);
    expectSameResult(out.results.at(1), fresh.run(trace),
                     "lockstep lane next to audited lane");
    SteadyGuard off(false);
    ScoreboardSim freshPlain(ScoreboardConfig::crayLike(), cfg);
    SimResult base = freshPlain.run(trace);
    EXPECT_EQ(out.results.at(0).cycles, base.cycles);
    EXPECT_EQ(out.results.at(0).instructions, base.instructions);
}

TEST(BatchedSweep, StructurallyDifferentTracesSplitGroups)
{
    const MachineConfig cfg = standardConfigs()[0];
    TraceLibrary &lib = TraceLibrary::instance();
    const DecodedTrace &a = lib.decoded(1, cfg);
    const DecodedTrace &b = lib.decoded(2, cfg);
    EXPECT_FALSE(structurallyIdentical(a, b));
    EXPECT_TRUE(structurallyIdentical(a, a));
    // Same loop decoded under different configs: different latencies,
    // same structure.
    const DecodedTrace &a2 = lib.decoded(1, standardConfigs()[1]);
    EXPECT_TRUE(structurallyIdentical(a, a2));

    ScoreboardSim s1(ScoreboardConfig::crayLike(), cfg);
    ScoreboardSim s2(ScoreboardConfig::crayLike(), cfg);
    ScoreboardSim s3(ScoreboardConfig::crayLike(), cfg);
    const BatchOutcome out = runBatch(
        { { &s1, &a }, { &s2, &b }, { &s3, &a } });
    // The two LL1 lanes form a lockstep group; the lone LL2 lane
    // falls back.
    EXPECT_EQ(out.lockstepLanes, 2u);
    EXPECT_EQ(out.scalarLanes, 1u);
    for (int i = 0; i < 3; ++i) {
        ScoreboardSim fresh(ScoreboardConfig::crayLike(), cfg);
        expectSameResult(
            out.results.at(std::size_t(i)),
            fresh.run(i == 1 ? b : a),
            "lane " + std::to_string(i));
    }
}

} // namespace
} // namespace mfusim
