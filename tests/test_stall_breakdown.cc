/**
 * @file
 * Stall-attribution tests for the scoreboard machine.
 */

#include <gtest/gtest.h>

#include "mfusim/harness/trace_library.hh"
#include "mfusim/obs/run_metrics.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

SimResult
runCray(const DynTrace &trace,
        const MachineConfig &cfg = configM11BR5())
{
    ScoreboardSim sim(ScoreboardConfig::crayLike(), cfg);
    return sim.run(trace);
}

TEST(StallBreakdown, NoHazardsNoStalls)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    const SimResult r = runCray(trace);
    ASSERT_TRUE(r.hasStalls);
    EXPECT_EQ(r.stalls.total(), 0u);
}

TEST(StallBreakdown, RawWaitAttributed)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kFAdd, S2, S1, S1),
    });
    const SimResult r = runCray(trace);
    // fadd waits cycles 1..10 on the load: 10 RAW stall cycles.
    EXPECT_EQ(r.stalls.raw, 10u);
    EXPECT_EQ(r.stalls.waw, 0u);
    EXPECT_EQ(r.stalls.branch, 0u);
}

TEST(StallBreakdown, WawWaitAttributed)
{
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kSConst, S1),
    });
    const SimResult r = runCray(trace);
    EXPECT_EQ(r.stalls.waw, 10u);
    EXPECT_EQ(r.stalls.raw, 0u);
}

TEST(StallBreakdown, StructuralWaitAttributed)
{
    // Serial memory: second load blocked on the memory unit.
    const DynTrace trace = traceOf({
        dyn(Op::kLoadS, S1, A1),
        dyn(Op::kLoadS, S2, A2),
    });
    ScoreboardSim sim(ScoreboardConfig::serialMemory(),
                      configM11BR5());
    const SimResult r = sim.run(trace);
    EXPECT_EQ(r.stalls.structural, 10u);
}

TEST(StallBreakdown, ResultBusConflictAttributed)
{
    const DynTrace trace = traceOf({
        dyn(Op::kFMul, S1, S4, S5),
        dyn(Op::kFAdd, S2, S6, S7),     // would complete with fmul
    });
    const SimResult r = runCray(trace);
    EXPECT_EQ(r.stalls.resultBus, 1u);
}

TEST(StallBreakdown, BranchTimeAttributed)
{
    const DynTrace trace = traceOf({
        dyn(Op::kAConst, A0),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),
        dyn(Op::kAConst, A1),
    });
    const SimResult r = runCray(trace);
    // Branch: no condition wait (A0 ready at its issue slot 1), 4
    // dead issue slots from the 5-cycle branch time.
    EXPECT_EQ(r.stalls.branch, 4u);

    // Condition wait also charged to branch:
    const DynTrace wait = traceOf({
        dyn(Op::kLoadA, A0, A1),
        dyn(Op::kBrAZ, kNoReg, A0, kNoReg, false),
    });
    const SimResult r2 = runCray(wait);
    // Branch slot 1, condition at 11: 10 wait + 4 dead slots.
    EXPECT_EQ(r2.stalls.branch, 14u);
}

TEST(StallBreakdown, AccountingConsistentOnBenchmarks)
{
    // busy + stalls explains (almost all of) the elapsed cycles:
    // the residue is the final instructions' in-flight latency.
    for (int id = 1; id <= 14; ++id) {
        const SimResult r =
            runCray(TraceLibrary::instance().trace(id));
        const std::uint64_t accounted =
            r.instructions + r.stalls.total();
        EXPECT_LE(accounted, r.cycles) << "loop " << id;
        EXPECT_GT(accounted, r.cycles - 30) << "loop " << id;
    }
}

TEST(StallBreakdown, RawDominatesOnRecurrenceLoop)
{
    const SimResult r = runCray(TraceLibrary::instance().trace(5));
    EXPECT_GT(r.stalls.raw, r.stalls.waw);
    EXPECT_GT(r.stalls.raw, r.stalls.structural);
    EXPECT_GT(r.stalls.raw, r.stalls.resultBus);
}

TEST(StallBreakdown, AddStallBreakdownUsesStandardNames)
{
    // The bench table is now rendered from a MetricsRegistry; this
    // pins the StallBreakdown -> cycles.stall.* name mapping it
    // relies on, and that repeated adds accumulate.
    StallBreakdown stalls;
    stalls.raw = 3;
    stalls.waw = 5;
    stalls.structural = 7;
    stalls.resultBus = 11;
    stalls.branch = 13;
    MetricsRegistry reg;
    addStallBreakdown(reg, stalls);
    addStallBreakdown(reg, stalls);
    EXPECT_EQ(reg.counterValue("cycles.stall.raw"), 6u);
    EXPECT_EQ(reg.counterValue("cycles.stall.waw"), 10u);
    EXPECT_EQ(reg.counterValue("cycles.stall.fu_busy"), 14u);
    EXPECT_EQ(reg.counterValue("cycles.stall.bus_busy"), 22u);
    EXPECT_EQ(reg.counterValue("cycles.stall.branch"), 26u);
}

TEST(StallBreakdown, SampledStallsMatchSummaryCounters)
{
    // The per-sample stream a PipeTraceRecorder collects must agree
    // cycle-for-cycle with the SimResult's summary StallBreakdown:
    // both sides are incremented at the same decision points in the
    // scoreboard issue loop.
    for (int id : { 1, 3, 5, 7 }) {
        const DecodedTrace trace(TraceLibrary::instance().trace(id),
                                 configM11BR5());
        ScoreboardSim sim(ScoreboardConfig::crayLike(),
                          configM11BR5());
        PipeTraceRecorder recorder;
        sim.attachAudit(&recorder);
        const SimResult r = sim.run(trace);
        sim.attachAudit(nullptr);

        MetricsRegistry reg;
        populateRunMetrics(reg, trace, recorder, r, sim);
        EXPECT_EQ(reg.counterValue("cycles.stall.raw"),
                  r.stalls.raw)
            << "loop " << id;
        EXPECT_EQ(reg.counterValue("cycles.stall.waw"),
                  r.stalls.waw)
            << "loop " << id;
        EXPECT_EQ(reg.counterValue("cycles.stall.fu_busy"),
                  r.stalls.structural)
            << "loop " << id;
        EXPECT_EQ(reg.counterValue("cycles.stall.bus_busy"),
                  r.stalls.resultBus)
            << "loop " << id;
        EXPECT_EQ(reg.counterValue("cycles.stall.branch"),
                  r.stalls.branch)
            << "loop " << id;
    }
}

TEST(StallBreakdown, InterleavingRemovesStructuralStalls)
{
    const DynTrace &trace = TraceLibrary::instance().trace(1);
    ScoreboardSim serial(ScoreboardConfig::serialMemory(),
                         configM11BR5());
    ScoreboardSim inter(ScoreboardConfig::nonSegmented(),
                        configM11BR5());
    EXPECT_GT(serial.run(trace).stalls.structural,
              inter.run(trace).stalls.structural * 2);
}

} // namespace
} // namespace mfusim
