/**
 * @file
 * Integration tests: the reproduction must exhibit the paper's
 * qualitative findings (shape, orderings, crossovers) even though
 * absolute issue rates differ (different compiler, same model).
 *
 * Each test here corresponds to a claim in the paper's prose.
 */

#include <gtest/gtest.h>

#include "mfusim/core/stats.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/harness/experiment.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/multi_issue_sim.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace mfusim
{
namespace
{

double
meanScoreboard(const ScoreboardConfig &org, LoopClass cls,
               const MachineConfig &cfg)
{
    return meanIssueRate(
        [&org](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(
                new ScoreboardSim(org, c));
        },
        cls, cfg);
}

double
meanRuu(const RuuConfig &org, LoopClass cls, const MachineConfig &cfg)
{
    return meanIssueRate(
        [&org](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(new RuuSim(org, c));
        },
        cls, cfg);
}

double
meanLimit(bool serial, LoopClass cls, const MachineConfig &cfg)
{
    std::vector<double> rates;
    for (int id : loopsOf(cls)) {
        rates.push_back(
            computeLimits(TraceLibrary::instance().trace(id), cfg,
                          serial)
                .actualRate);
    }
    return harmonicMean(rates);
}

TEST(PaperShapes, InterleavingBeatsPipeliningForScalarCodeAtM11)
{
    // "a relatively large performance gain is made by interleaving
    //  the memory alone than by pipelining the functional units"
    const MachineConfig cfg = configM11BR5();
    const double serial_mem = meanScoreboard(
        ScoreboardConfig::serialMemory(), LoopClass::kScalar, cfg);
    const double interleaved = meanScoreboard(
        ScoreboardConfig::nonSegmented(), LoopClass::kScalar, cfg);
    const double pipelined = meanScoreboard(
        ScoreboardConfig::crayLike(), LoopClass::kScalar, cfg);
    const double interleave_gain = interleaved - serial_mem;
    const double pipeline_gain = pipelined - interleaved;
    EXPECT_GT(interleave_gain, pipeline_gain);
}

TEST(PaperShapes, InterleavingMattersLessWithFastMemory)
{
    // "If the latency of the memory is smaller, the performance
    //  improvement is not so significant."
    const double gain_m11 =
        meanScoreboard(ScoreboardConfig::nonSegmented(),
                       LoopClass::kScalar, configM11BR5()) /
        meanScoreboard(ScoreboardConfig::serialMemory(),
                       LoopClass::kScalar, configM11BR5());
    const double gain_m5 =
        meanScoreboard(ScoreboardConfig::nonSegmented(),
                       LoopClass::kScalar, configM5BR5()) /
        meanScoreboard(ScoreboardConfig::serialMemory(),
                       LoopClass::kScalar, configM5BR5());
    EXPECT_GT(gain_m11, gain_m5);
}

TEST(PaperShapes, PipeliningFunctionalUnitsBarelyHelpsScalarCode)
{
    // "Pipelining the functional units, however, does not have a
    //  significant impact on performance." (scalar, blocking issue)
    for (const MachineConfig &cfg : standardConfigs()) {
        const double nonseg = meanScoreboard(
            ScoreboardConfig::nonSegmented(), LoopClass::kScalar,
            cfg);
        const double cray = meanScoreboard(
            ScoreboardConfig::crayLike(), LoopClass::kScalar, cfg);
        EXPECT_LT((cray - nonseg) / nonseg, 0.10) << cfg.name();
    }
}

TEST(PaperShapes, PureDataflowLimitIndependentOfMemoryLatency)
{
    // Table 2: identical pseudo-dataflow limits for M11 and M5.
    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        const double m11 = meanLimit(false, cls, configM11BR5());
        const double m5 = meanLimit(false, cls, configM5BR5());
        EXPECT_NEAR(m11, m5, 0.02 * m11);
    }
}

TEST(PaperShapes, SerialLimitDependsOnMemoryLatency)
{
    // Table 2 "Serial": register reuse chains loads, so M5 > M11.
    const double m11 =
        meanLimit(true, LoopClass::kScalar, configM11BR5());
    const double m5 =
        meanLimit(true, LoopClass::kScalar, configM5BR5());
    EXPECT_GT(m5, m11);
}

TEST(PaperShapes, VectorizableLoopsHaveHigherDataflowLimit)
{
    // "we expect the vectorizable loops to exhibit a reasonably high
    //  degree of parallelism while we expect the scalar loops to
    //  exhibit a comparatively low degree"
    for (const MachineConfig &cfg : standardConfigs()) {
        EXPECT_GT(meanLimit(false, LoopClass::kVectorizable, cfg),
                  meanLimit(false, LoopClass::kScalar, cfg))
            << cfg.name();
    }
}

TEST(PaperShapes, LimitsShowHeadroomAboveOne)
{
    // The motivation for multiple issue: actual limits exceed 1
    // instruction/cycle.
    for (const MachineConfig &cfg : standardConfigs()) {
        EXPECT_GT(meanLimit(false, LoopClass::kScalar, cfg), 1.0);
        EXPECT_GT(meanLimit(false, LoopClass::kVectorizable, cfg),
                  1.3);
    }
}

TEST(PaperShapes, SerialLimitsMostlyBelowOne)
{
    // Table 2's punchline: without WAW buffering, an issue rate
    // above 1 is (mostly) unreachable regardless of issue width.
    EXPECT_LT(meanLimit(true, LoopClass::kScalar, configM11BR5()),
              1.0);
    EXPECT_LT(meanLimit(true, LoopClass::kVectorizable,
                        configM11BR5()),
              1.1);
}

TEST(PaperShapes, SequentialMultiIssueSaturatesBySmallWidth)
{
    // "having the capability of issuing up to 8 instructions per
    //  cycle is almost equivalent to having the capability of
    //  issuing 3 or 4"
    const MachineConfig cfg = configM11BR5();
    const auto rate = [&cfg](unsigned w) {
        return meanIssueRate(
            [w](const MachineConfig &c) {
                return std::unique_ptr<Simulator>(new MultiIssueSim(
                    { w, false, BusKind::kPerUnit, false }, c));
            },
            LoopClass::kScalar, cfg);
    };
    const double r4 = rate(4);
    const double r8 = rate(8);
    EXPECT_LT(r8 - r4, 0.03);
}

TEST(PaperShapes, OneBusIsNotABottleneckAtLowRates)
{
    // "restricting the size or use of result bus does not
    //  significantly impact performance" (sequential issue)
    const MachineConfig cfg = configM11BR5();
    for (unsigned w : { 2u, 4u, 8u }) {
        const auto mean = [&](BusKind bus) {
            return meanIssueRate(
                [w, bus](const MachineConfig &c) {
                    return std::unique_ptr<Simulator>(
                        new MultiIssueSim({ w, false, bus, false },
                                          c));
                },
                LoopClass::kScalar, cfg);
        };
        EXPECT_LT(mean(BusKind::kPerUnit) - mean(BusKind::kSingle),
                  0.02)
            << "width " << w;
    }
}

TEST(PaperShapes, XBarEssentiallyEqualsNBus)
{
    // "the results for the X-bar case are essentially the same as
    //  those for the N-bus case"
    const MachineConfig cfg = configM11BR5();
    for (const LoopClass cls :
         { LoopClass::kScalar, LoopClass::kVectorizable }) {
        const auto mean = [&](BusKind bus) {
            return meanIssueRate(
                [bus](const MachineConfig &c) {
                    return std::unique_ptr<Simulator>(
                        new MultiIssueSim({ 4, false, bus, false },
                                          c));
                },
                cls, cfg);
        };
        EXPECT_NEAR(mean(BusKind::kCrossbar), mean(BusKind::kPerUnit),
                    0.01);
    }
}

TEST(PaperShapes, DependencyResolutionIsTheBigSingleIssueWin)
{
    // "the biggest improvement from a simple CRAY-like organization
    //  comes from using dependency resolution with a single issue
    //  unit"
    const MachineConfig cfg = configM11BR5();
    const double cray = meanScoreboard(ScoreboardConfig::crayLike(),
                                       LoopClass::kScalar, cfg);
    const double ruu1 = meanRuu({ 1, 50, BusKind::kPerUnit },
                                LoopClass::kScalar, cfg);
    EXPECT_GT(ruu1, cray * 1.5);
}

TEST(PaperShapes, RuuVectorizableScalesPastOne)
{
    // Table 8: with enough issue units and RUU entries,
    // vectorizable code sustains more than 1 instruction per cycle.
    const double rate = meanRuu({ 4, 100, BusKind::kPerUnit },
                                LoopClass::kVectorizable,
                                configM5BR2());
    EXPECT_GT(rate, 1.0);
}

TEST(PaperShapes, RuuOneBusCapsVectorizableScaling)
{
    // "When sufficient parallelism exists in the code, the use of a
    //  single result bus can be a bottleneck."
    const MachineConfig cfg = configM11BR2();
    const double nbus = meanRuu({ 4, 100, BusKind::kPerUnit },
                                LoopClass::kVectorizable, cfg);
    const double onebus = meanRuu({ 4, 100, BusKind::kSingle },
                                  LoopClass::kVectorizable, cfg);
    EXPECT_GT(nbus, onebus + 0.1);
}

TEST(PaperShapes, RuuToleratesSlowMemoryWithMoreBuffering)
{
    // "an issuing scheme that uses dependency resolution can
    //  tolerate slower memory by increasing the amount of buffer
    //  storage available"
    const MachineConfig cfg = configM11BR5();
    const double small = meanRuu({ 2, 10, BusKind::kPerUnit },
                                 LoopClass::kScalar, cfg);
    const double large = meanRuu({ 2, 50, BusKind::kPerUnit },
                                 LoopClass::kScalar, cfg);
    EXPECT_GT(large, small * 1.15);
}

TEST(PaperShapes, ScalarRuuSaturatesByFourUnits)
{
    // "We present the results for up to 4 issue units since having
    //  more than 4 issue units did not make a significant
    //  difference." (scalar code)
    const MachineConfig cfg = configM11BR5();
    const double u4 = meanRuu({ 4, 50, BusKind::kPerUnit },
                              LoopClass::kScalar, cfg);
    const double u8 = meanRuu({ 8, 48, BusKind::kPerUnit },
                              LoopClass::kScalar, cfg);
    EXPECT_LT(u8 - u4, 0.06);
}

TEST(PaperShapes, SimpleMachineIsSmallFractionOfLimit)
{
    // Section 6: the serial machine reaches only a small fraction
    // of the theoretical maximum, and vectorizable code an even
    // smaller fraction of its (higher) limit.
    const MachineConfig cfg = configM11BR5();
    const double simple_scalar = meanIssueRate(
        [](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(new SimpleSim(c));
        },
        LoopClass::kScalar, cfg);
    const double limit_scalar =
        meanLimit(false, LoopClass::kScalar, cfg);
    EXPECT_LT(simple_scalar / limit_scalar, 0.35);

    const double simple_vector = meanIssueRate(
        [](const MachineConfig &c) {
            return std::unique_ptr<Simulator>(new SimpleSim(c));
        },
        LoopClass::kVectorizable, cfg);
    const double limit_vector =
        meanLimit(false, LoopClass::kVectorizable, cfg);
    EXPECT_LT(simple_vector / limit_vector,
              simple_scalar / limit_scalar);
}

} // namespace
} // namespace mfusim
