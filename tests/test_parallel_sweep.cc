/**
 * @file
 * Parallel sweep runner: runGrid must visit every cell exactly once
 * and propagate errors, and the parallel per-loop rates must be
 * bit-identical to the serial computation for the paper's table
 * cells (determinism by construction).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/harness/sweep.hh"
#include "mfusim/harness/trace_library.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"
#include "mfusim/sim/simple_sim.hh"

namespace mfusim
{
namespace
{

TEST(RunGrid, VisitsEveryCellOnce)
{
    for (const unsigned jobs : { 1u, 2u, 4u, 32u }) {
        const std::size_t cells = 100;
        std::vector<std::atomic<int>> visits(cells);
        runGrid(cells, [&](std::size_t i) { visits[i]++; }, jobs);
        for (std::size_t i = 0; i < cells; ++i)
            EXPECT_EQ(visits[i].load(), 1)
                << "cell " << i << " with " << jobs << " jobs";
    }
}

TEST(RunGrid, EmptyGridIsANoop)
{
    bool ran = false;
    runGrid(0, [&](std::size_t) { ran = true; }, 4);
    EXPECT_FALSE(ran);
}

TEST(RunGrid, PropagatesBodyException)
{
    EXPECT_THROW(
        runGrid(16, [](std::size_t i) {
            if (i == 7)
                throw std::runtime_error("cell 7 failed");
        }, 4),
        std::runtime_error);
}

TEST(RunGrid, AggregatesAllFailures)
{
    // Two independently failing cells must BOTH appear in the
    // SweepError (not just whichever a worker hit first), and the
    // healthy cells must still all run.
    for (const unsigned jobs : { 1u, 4u }) {
        std::vector<std::atomic<int>> visits(16);
        try {
            runGrid(16, [&](std::size_t i) {
                visits[i]++;
                if (i == 3)
                    throw std::runtime_error("cell three broke");
                if (i == 11)
                    throw std::runtime_error("cell eleven broke");
            }, jobs);
            FAIL() << "no SweepError with " << jobs << " jobs";
        } catch (const SweepError &e) {
            ASSERT_EQ(e.failures().size(), 2u) << e.what();
            EXPECT_EQ(e.failures()[0].cell, 3u);
            EXPECT_EQ(e.failures()[1].cell, 11u);
            EXPECT_NE(e.failures()[0].message.find("three"),
                      std::string::npos);
            EXPECT_NE(e.failures()[1].message.find("eleven"),
                      std::string::npos);
            const std::string what = e.what();
            EXPECT_NE(what.find("cell 3"), std::string::npos) << what;
            EXPECT_NE(what.find("cell 11"), std::string::npos)
                << what;
        }
        for (std::size_t i = 0; i < visits.size(); ++i)
            EXPECT_EQ(visits[i].load(), 1)
                << "cell " << i << " with " << jobs << " jobs";
    }
}

TEST(RunGrid, StopOnFailurePolicyDrainsEarly)
{
    // Serial grid, stop-on-failure: nothing past the failing cell
    // runs, and the one failure is still reported as a SweepError.
    std::vector<int> visits(8, 0);
    try {
        runGrid(8, [&](std::size_t i) {
            visits[i]++;
            if (i == 2)
                throw std::runtime_error("boom");
        }, 1, GridFailurePolicy::kStopOnFailure);
        FAIL() << "no SweepError";
    } catch (const SweepError &e) {
        ASSERT_EQ(e.failures().size(), 1u);
        EXPECT_EQ(e.failures()[0].cell, 2u);
    }
    EXPECT_EQ(visits[2], 1);
    for (std::size_t i = 3; i < visits.size(); ++i)
        EXPECT_EQ(visits[i], 0) << "cell " << i;
}

TEST(ParallelPerLoopRates, FailuresNameTheLoop)
{
    // A simulator that rejects the trace of loops 2 and 5: the sweep
    // must attempt every loop and report both failures keyed by loop
    // id, not by opaque cell index.
    class PickySim : public Simulator
    {
      public:
        explicit PickySim(const MachineConfig &cfg) : cfg_(cfg) {}

        using Simulator::run;
        SimResult
        run(const DecodedTrace &trace) override
        {
            if (trace.name() == "LL2" || trace.name() == "LL5")
                throw SimError("unsupported trace " + trace.name());
            SimResult r;
            r.instructions = trace.size();
            r.cycles = ClockCycle(trace.size());
            return r;
        }
        std::string name() const override { return "Picky"; }
        const MachineConfig &config() const override { return cfg_; }

      private:
        MachineConfig cfg_;
    };

    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<PickySim>(c);
    };
    const std::vector<int> loops{ 1, 2, 3, 4, 5 };
    try {
        parallelPerLoopRates(factory, loops, configM11BR5(), 2);
        FAIL() << "no SweepError";
    } catch (const SweepError &e) {
        ASSERT_EQ(e.failures().size(), 2u) << e.what();
        const std::string what = e.what();
        EXPECT_NE(what.find("loop 2 (M11BR5)"), std::string::npos)
            << what;
        EXPECT_NE(what.find("loop 5 (M11BR5)"), std::string::npos)
            << what;
    }
}

TEST(RunGrid, NestedCallsRunInline)
{
    // A grid body may itself call runGrid (table drivers call
    // parallel helpers); the nested grid must run inline on the
    // worker rather than spawning a second pool.
    std::vector<std::atomic<int>> visits(64);
    runGrid(8, [&](std::size_t outer) {
        runGrid(8, [&](std::size_t inner) {
            visits[outer * 8 + inner]++;
        }, 8);
    }, 4);
    for (std::size_t i = 0; i < visits.size(); ++i)
        EXPECT_EQ(visits[i].load(), 1) << "cell " << i;
}

TEST(RunGrid, DefaultJobsOverride)
{
    setDefaultSweepJobs(3);
    EXPECT_EQ(defaultSweepJobs(), 3u);
    setDefaultSweepJobs(0);
    EXPECT_GE(defaultSweepJobs(), 1u);
}

/** Serial reference: fresh simulator per loop, DynTrace path. */
std::vector<double>
serialRates(const SimFactory &factory, const std::vector<int> &loops,
            const MachineConfig &cfg)
{
    std::vector<double> rates;
    for (int loop : loops) {
        auto sim = factory(cfg);
        rates.push_back(
            sim->run(TraceLibrary::instance().trace(loop))
                .issueRate());
    }
    return rates;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<LoopClass>
{};

TEST_P(ParallelDeterminism, Table1CrayLikeCellsBitIdentical)
{
    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<ScoreboardSim>(
            ScoreboardConfig::crayLike(), c);
    };
    const std::vector<int> &loops = loopsOf(GetParam());
    for (const MachineConfig &cfg : standardConfigs()) {
        const std::vector<double> serial =
            serialRates(factory, loops, cfg);
        for (const unsigned jobs : { 1u, 2u, 4u }) {
            const std::vector<double> parallel =
                parallelPerLoopRates(factory, loops, cfg, jobs);
            ASSERT_EQ(parallel.size(), serial.size());
            for (std::size_t i = 0; i < serial.size(); ++i)
                EXPECT_EQ(parallel[i], serial[i])
                    << cfg.name() << " loop " << loops[i] << " with "
                    << jobs << " jobs";
        }
    }
}

TEST_P(ParallelDeterminism, Table7RuuCellsBitIdentical)
{
    const SimFactory factory = [](const MachineConfig &c)
        -> std::unique_ptr<Simulator> {
        return std::make_unique<RuuSim>(
            RuuConfig{ 2, 20, BusKind::kPerUnit }, c);
    };
    const std::vector<int> &loops = loopsOf(GetParam());
    const MachineConfig cfg = configM11BR5();
    const std::vector<double> serial =
        serialRates(factory, loops, cfg);
    const std::vector<double> parallel =
        parallelPerLoopRates(factory, loops, cfg, 4);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(parallel[i], serial[i]) << "loop " << loops[i];
}

INSTANTIATE_TEST_SUITE_P(
    BothClasses, ParallelDeterminism,
    ::testing::Values(LoopClass::kScalar, LoopClass::kVectorizable),
    [](const ::testing::TestParamInfo<LoopClass> &info) {
        return loopClassName(info.param);
    });

} // namespace
} // namespace mfusim
