/**
 * @file
 * Statistics helper tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "mfusim/core/stats.hh"

namespace mfusim
{
namespace
{

TEST(Stats, HarmonicMeanOfEqualRatesIsTheRate)
{
    const std::vector<double> rates = { 0.5, 0.5, 0.5 };
    EXPECT_DOUBLE_EQ(harmonicMean(rates), 0.5);
}

TEST(Stats, HarmonicMeanKnownValue)
{
    // HM(1, 2) = 2 / (1 + 0.5) = 4/3.
    const std::vector<double> rates = { 1.0, 2.0 };
    EXPECT_DOUBLE_EQ(harmonicMean(rates), 4.0 / 3.0);
}

TEST(Stats, HarmonicMeanDominatedBySlowest)
{
    // The paper uses the harmonic mean precisely because a single
    // slow loop should drag the class number down.
    const std::vector<double> rates = { 0.1, 10.0, 10.0, 10.0 };
    EXPECT_LT(harmonicMean(rates), 0.4);
}

TEST(Stats, HarmonicMeanNeverExceedsArithmetic)
{
    const std::vector<double> rates = { 0.3, 0.7, 1.4, 2.2, 0.9 };
    EXPECT_LE(harmonicMean(rates), arithmeticMean(rates));
    EXPECT_LE(harmonicMean(rates), geometricMean(rates));
    EXPECT_LE(geometricMean(rates), arithmeticMean(rates));
}

TEST(Stats, EmptyInputsGiveZero)
{
    const std::vector<double> empty;
    EXPECT_DOUBLE_EQ(harmonicMean(empty), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean(empty), 0.0);
    EXPECT_DOUBLE_EQ(geometricMean(empty), 0.0);
}

TEST(Stats, SingleElement)
{
    const std::vector<double> one = { 0.42 };
    EXPECT_DOUBLE_EQ(harmonicMean(one), 0.42);
    EXPECT_DOUBLE_EQ(arithmeticMean(one), 0.42);
    EXPECT_NEAR(geometricMean(one), 0.42, 1e-12);
}

TEST(Stats, ArithmeticMeanKnownValue)
{
    const std::vector<double> values = { 1.0, 2.0, 3.0, 4.0 };
    EXPECT_DOUBLE_EQ(arithmeticMean(values), 2.5);
}

TEST(Stats, GeometricMeanKnownValue)
{
    const std::vector<double> values = { 2.0, 8.0 };
    EXPECT_NEAR(geometricMean(values), 4.0, 1e-12);
}

} // namespace
} // namespace mfusim
