/**
 * @file
 * FaultRegistry: spec grammar, deterministic trigger schedules, and
 * the inert-when-unset guarantee the production build relies on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "mfusim/core/error.hh"
#include "mfusim/core/faultpoint.hh"

// Tests that need a probe to actually fire cannot run when the
// probes are compiled down to constant false.
#ifdef MFUSIM_NO_FAULT_INJECTION
#define SKIP_WITHOUT_FAULT_INJECTION() \
    GTEST_SKIP() << "built with MFUSIM_NO_FAULT_INJECTION"
#else
#define SKIP_WITHOUT_FAULT_INJECTION() (void)0
#endif

namespace mfusim
{
namespace
{

/** Every test leaves the global registry disarmed. */
class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { FaultRegistry::instance().reset(); }
    void TearDown() override { FaultRegistry::instance().reset(); }
};

TEST_F(FaultTest, InertWhenUnset)
{
    EXPECT_FALSE(FaultRegistry::instance().armed());
    EXPECT_FALSE(faultAt("persist.write"));
    EXPECT_FALSE(faultAt("http.read"));
    EXPECT_EQ(faultMode("http.read"), "");
    // Disarmed evaluations are not even counted.
    EXPECT_TRUE(FaultRegistry::instance().stats().empty());
}

TEST_F(FaultTest, EmptySpecDisarms)
{
    FaultRegistry::instance().configure("worker.die:once");
    EXPECT_TRUE(FaultRegistry::instance().armed());
    FaultRegistry::instance().configure("");
    EXPECT_FALSE(FaultRegistry::instance().armed());
    EXPECT_FALSE(faultAt("worker.die"));
}

TEST_F(FaultTest, BarePointFiresEveryEvaluation)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    FaultRegistry::instance().configure("http.read:short");
    for (int i = 0; i < 5; ++i)
        EXPECT_TRUE(faultAt("http.read"));
    EXPECT_EQ(faultMode("http.read"), "short");
    // Other points stay untouched.
    EXPECT_FALSE(faultAt("http.write"));
}

TEST_F(FaultTest, OnceFiresExactlyOnce)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    FaultRegistry::instance().configure("worker.die:once");
    EXPECT_TRUE(faultAt("worker.die"));
    for (int i = 0; i < 10; ++i)
        EXPECT_FALSE(faultAt("worker.die"));
}

TEST_F(FaultTest, EveryNFiresOnSchedule)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    FaultRegistry::instance().configure("persist.fsync:every=3");
    std::vector<int> fired;
    for (int eval = 1; eval <= 9; ++eval)
        if (faultAt("persist.fsync"))
            fired.push_back(eval);
    EXPECT_EQ(fired, (std::vector<int>{ 3, 6, 9 }));
}

TEST_F(FaultTest, TriggersCompose)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    // The doc-comment example: fires on evaluations 13 and 16 only.
    FaultRegistry::instance().configure(
        "persist.write:after=10:every=3:times=2");
    std::vector<int> fired;
    for (int eval = 1; eval <= 30; ++eval)
        if (faultAt("persist.write"))
            fired.push_back(eval);
    EXPECT_EQ(fired, (std::vector<int>{ 13, 16 }));
}

TEST_F(FaultTest, ProbIsDeterministicForASeed)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    const auto schedule = [](const std::string &spec) {
        FaultRegistry::instance().configure(spec);
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i)
            out.push_back(faultAt("http.write"));
        return out;
    };
    const std::vector<bool> a =
        schedule("seed=42,http.write:prob=0.5");
    const std::vector<bool> b =
        schedule("seed=42,http.write:prob=0.5");
    EXPECT_EQ(a, b);
    // Something fired and something didn't — it is a schedule, not a
    // constant.
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FaultTest, ModeAndTriggersMix)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    FaultRegistry::instance().configure("http.read:fail:every=2");
    EXPECT_FALSE(faultAt("http.read"));
    EXPECT_TRUE(faultAt("http.read"));
    EXPECT_EQ(faultMode("http.read"), "fail");
}

TEST_F(FaultTest, StatsCountEvaluationsAndFires)
{
    SKIP_WITHOUT_FAULT_INJECTION();
    FaultRegistry::instance().configure("worker.overrun:every=2");
    for (int i = 0; i < 6; ++i)
        faultAt("worker.overrun");
    const std::vector<FaultPointStats> stats =
        FaultRegistry::instance().stats();
    ASSERT_EQ(stats.size(), 1u);
    EXPECT_EQ(stats[0].point, "worker.overrun");
    EXPECT_EQ(stats[0].evaluations, 6u);
    EXPECT_EQ(stats[0].fires, 3u);
}

TEST_F(FaultTest, SpecIsReadable)
{
    const std::string spec = "persist.write:torn:once,http.read:short";
    FaultRegistry::instance().configure(spec);
    EXPECT_EQ(FaultRegistry::instance().spec(), spec);
    // Stats come back in spec order.
    const std::vector<FaultPointStats> stats =
        FaultRegistry::instance().stats();
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_EQ(stats[0].point, "persist.write");
    EXPECT_EQ(stats[0].mode, "torn");
    EXPECT_EQ(stats[1].point, "http.read");
}

TEST_F(FaultTest, UnknownPointIsAConfigError)
{
    EXPECT_THROW(FaultRegistry::instance().configure("persist.wrte"),
                 ConfigError);
    // A failed configure must not leave half a spec armed.
    EXPECT_FALSE(FaultRegistry::instance().armed());
}

TEST_F(FaultTest, GrammarErrorsAreConfigErrors)
{
    FaultRegistry &reg = FaultRegistry::instance();
    EXPECT_THROW(reg.configure("persist.write:every=0"), ConfigError);
    EXPECT_THROW(reg.configure("persist.write:every=x"), ConfigError);
    EXPECT_THROW(reg.configure("persist.write:prob=1.5"), ConfigError);
    EXPECT_THROW(reg.configure("persist.write:bogus=1"), ConfigError);
    EXPECT_THROW(
        reg.configure("persist.write:once,persist.write:once"),
        ConfigError);
}

TEST_F(FaultTest, KnownPointsAllParse)
{
    for (const FaultPointInfo &info : knownFaultPoints()) {
        FaultRegistry::instance().configure(std::string(info.point) +
                                            ":once");
        EXPECT_TRUE(FaultRegistry::instance().armed()) << info.point;
    }
}

} // namespace
} // namespace mfusim
