/**
 * @file
 * Reference kernel sanity tests (the golden models themselves).
 */

#include <gtest/gtest.h>

#include "mfusim/codegen/reference_kernels.hh"

namespace mfusim
{
namespace
{

TEST(RefKernels, RefDivIsAccurate)
{
    EXPECT_NEAR(ref::refDiv(1.0, 3.0), 1.0 / 3.0, 1e-12);
    EXPECT_NEAR(ref::refDiv(10.0, 4.0), 2.5, 1e-12);
    EXPECT_NEAR(ref::refDiv(-6.0, 2.0), -3.0, 1e-12);
}

TEST(RefKernels, Loop11IsPrefixSum)
{
    std::vector<double> x = { 1.0, 0.0, 0.0, 0.0 };
    const std::vector<double> y = { 0.0, 2.0, 3.0, 4.0 };
    ref::loop11(x, y, 4);
    EXPECT_DOUBLE_EQ(x[1], 3.0);
    EXPECT_DOUBLE_EQ(x[2], 6.0);
    EXPECT_DOUBLE_EQ(x[3], 10.0);
}

TEST(RefKernels, Loop12IsFirstDifference)
{
    std::vector<double> x(3, 0.0);
    const std::vector<double> y = { 1.0, 4.0, 9.0, 16.0 };
    ref::loop12(x, y, 3);
    EXPECT_DOUBLE_EQ(x[0], 3.0);
    EXPECT_DOUBLE_EQ(x[1], 5.0);
    EXPECT_DOUBLE_EQ(x[2], 7.0);
}

TEST(RefKernels, Loop3IsInnerProduct)
{
    const std::vector<double> z = { 1.0, 2.0, 3.0 };
    const std::vector<double> x = { 4.0, 5.0, 6.0 };
    EXPECT_DOUBLE_EQ(ref::loop3(z, x, 3), 4.0 + 10.0 + 18.0);
}

TEST(RefKernels, Loop5IsRecurrence)
{
    std::vector<double> x = { 2.0, 0.0, 0.0 };
    const std::vector<double> y = { 0.0, 5.0, 7.0 };
    const std::vector<double> z = { 0.0, 0.5, 2.0 };
    ref::loop5(x, y, z, 3);
    EXPECT_DOUBLE_EQ(x[1], 0.5 * (5.0 - 2.0));
    EXPECT_DOUBLE_EQ(x[2], 2.0 * (7.0 - 1.5));
}

TEST(RefKernels, Loop6TriangularRecurrence)
{
    // n = 3: w[1] = 0.01 + b[0][1]*w[0];
    //        w[2] = 0.01 + b[0][2]*w[1] + b[1][2]*w[0].
    std::vector<double> w = { 1.0, 0.0, 0.0 };
    std::vector<double> b(9, 0.0);
    b[0 * 3 + 1] = 2.0;     // b[0][1]
    b[0 * 3 + 2] = 3.0;     // b[0][2]
    b[1 * 3 + 2] = 4.0;     // b[1][2]
    ref::loop6(w, b, 3);
    EXPECT_DOUBLE_EQ(w[1], 0.01 + 2.0);
    EXPECT_DOUBLE_EQ(w[2], 0.01 + 3.0 * w[1] + 4.0 * 1.0);
}

TEST(RefKernels, Loop2HalvesWorkEachPass)
{
    // n = 4: passes touch x[4..5] then x[6].
    std::vector<double> x(10, 1.0), v(10, 0.0);
    ref::loop2(x, v, 4);
    // With v = 0: x[i] = x[k] = 1 everywhere; just bounds sanity.
    for (double value : x)
        EXPECT_DOUBLE_EQ(value, 1.0);
}

TEST(RefKernels, Loop13ConservesParticleCount)
{
    const int n = 16;
    std::vector<double> p(std::size_t(n) * 4);
    for (int i = 0; i < n * 4; ++i)
        p[std::size_t(i)] = double(i % 20);
    std::vector<double> b(1024, 0.25), c(1024, 0.25);
    std::vector<double> h(1024, 0.0);
    std::vector<std::int64_t> e(1024, 1), f(1024, 2);
    std::vector<double> yz(128, 0.5);
    ref::loop13(p, b, c, h, e, f, yz, n);
    double total = 0.0;
    for (double cell : h)
        total += cell;
    EXPECT_DOUBLE_EQ(total, double(n));    // one count per particle
}

TEST(RefKernels, Loop14ConservesCharge)
{
    const int n = 8;
    std::vector<double> grd(n), ex(64, 0.5), dex(64, 0.01);
    for (int k = 0; k < n; ++k)
        grd[k] = double(5 + 3 * k);
    std::vector<double> vx(n), xx(n), rx(n);
    std::vector<std::int64_t> ir(n);
    std::vector<double> rh(2050, 0.0);
    ref::loop14(grd, ex, dex, vx, xx, ir, rx, rh, 1.5, n);
    double total = 0.0;
    for (double cell : rh)
        total += cell;
    // Each particle scatters (1 - rx) + rx = 1 unit of charge.
    EXPECT_NEAR(total, double(n), 1e-9);
}

} // namespace
} // namespace mfusim
