/**
 * @file
 * Opcode trait table tests: functional-unit routing, latencies,
 * parcel counts and classification predicates.
 */

#include <gtest/gtest.h>

#include "mfusim/core/opcode.hh"

namespace mfusim
{
namespace
{

TEST(Opcode, Cray1Latencies)
{
    const MachineConfig cfg = configM11BR5();
    EXPECT_EQ(latencyOf(Op::kAAdd, cfg), 2u);       // address add
    EXPECT_EQ(latencyOf(Op::kAMul, cfg), 6u);       // address multiply
    EXPECT_EQ(latencyOf(Op::kSAdd, cfg), 3u);       // scalar add
    EXPECT_EQ(latencyOf(Op::kSAnd, cfg), 1u);       // scalar logical
    EXPECT_EQ(latencyOf(Op::kSShL, cfg), 2u);       // scalar shift
    EXPECT_EQ(latencyOf(Op::kFAdd, cfg), 6u);       // floating add
    EXPECT_EQ(latencyOf(Op::kFMul, cfg), 7u);       // floating multiply
    EXPECT_EQ(latencyOf(Op::kFRecip, cfg), 14u);    // reciprocal
    EXPECT_EQ(latencyOf(Op::kSMovA, cfg), 1u);      // transfer path
}

TEST(Opcode, ConfigDependentLatencies)
{
    EXPECT_EQ(latencyOf(Op::kLoadS, configM11BR5()), 11u);
    EXPECT_EQ(latencyOf(Op::kLoadS, configM5BR2()), 5u);
    EXPECT_EQ(latencyOf(Op::kStoreS, configM11BR2()), 11u);
    EXPECT_EQ(latencyOf(Op::kBrANZ, configM11BR5()), 5u);
    EXPECT_EQ(latencyOf(Op::kBrANZ, configM11BR2()), 2u);
    EXPECT_EQ(latencyOf(Op::kJump, configM5BR2()), 2u);
}

TEST(Opcode, FuRouting)
{
    EXPECT_EQ(traitsOf(Op::kAAdd).fu, FuClass::kAddrAdd);
    EXPECT_EQ(traitsOf(Op::kAAddI).fu, FuClass::kAddrAdd);
    EXPECT_EQ(traitsOf(Op::kASub).fu, FuClass::kAddrAdd);
    EXPECT_EQ(traitsOf(Op::kAMul).fu, FuClass::kAddrMul);
    EXPECT_EQ(traitsOf(Op::kFAdd).fu, FuClass::kFpAdd);
    EXPECT_EQ(traitsOf(Op::kFSub).fu, FuClass::kFpAdd);
    EXPECT_EQ(traitsOf(Op::kSFix).fu, FuClass::kFpAdd);
    EXPECT_EQ(traitsOf(Op::kSFloat).fu, FuClass::kFpAdd);
    EXPECT_EQ(traitsOf(Op::kFMul).fu, FuClass::kFpMul);
    EXPECT_EQ(traitsOf(Op::kFRecip).fu, FuClass::kRecip);
    EXPECT_EQ(traitsOf(Op::kLoadA).fu, FuClass::kMemory);
    EXPECT_EQ(traitsOf(Op::kStoreS).fu, FuClass::kMemory);
    EXPECT_EQ(traitsOf(Op::kBrAZ).fu, FuClass::kBranch);
    EXPECT_EQ(traitsOf(Op::kSConst).fu, FuClass::kTransfer);
}

TEST(Opcode, ParcelCounts)
{
    // Register-register operations are 1 parcel.
    EXPECT_EQ(traitsOf(Op::kAAdd).parcels, 1u);
    EXPECT_EQ(traitsOf(Op::kFMul).parcels, 1u);
    EXPECT_EQ(traitsOf(Op::kSMovT).parcels, 1u);
    // Instructions carrying a 22-bit constant are 2 parcels.
    EXPECT_EQ(traitsOf(Op::kLoadS).parcels, 2u);
    EXPECT_EQ(traitsOf(Op::kStoreA).parcels, 2u);
    EXPECT_EQ(traitsOf(Op::kAConst).parcels, 2u);
    EXPECT_EQ(traitsOf(Op::kBrANZ).parcels, 2u);
    EXPECT_EQ(traitsOf(Op::kJump).parcels, 2u);
}

TEST(Opcode, BranchPredicate)
{
    EXPECT_TRUE(isBranch(Op::kBrAZ));
    EXPECT_TRUE(isBranch(Op::kBrSM));
    EXPECT_TRUE(isBranch(Op::kJump));
    EXPECT_FALSE(isBranch(Op::kHalt));
    EXPECT_FALSE(isBranch(Op::kFAdd));
    EXPECT_FALSE(isBranch(Op::kLoadS));
}

TEST(Opcode, MemoryPredicates)
{
    EXPECT_TRUE(isMemory(Op::kLoadA));
    EXPECT_TRUE(isMemory(Op::kStoreS));
    EXPECT_TRUE(isLoad(Op::kLoadS));
    EXPECT_FALSE(isLoad(Op::kStoreS));
    EXPECT_TRUE(isStore(Op::kStoreA));
    EXPECT_FALSE(isStore(Op::kLoadA));
    EXPECT_FALSE(isMemory(Op::kFAdd));
}

TEST(Opcode, ProducesResult)
{
    EXPECT_TRUE(producesResult(Op::kFAdd));
    EXPECT_TRUE(producesResult(Op::kLoadS));
    EXPECT_TRUE(producesResult(Op::kSConst));
    EXPECT_FALSE(producesResult(Op::kStoreS));
    EXPECT_FALSE(producesResult(Op::kBrANZ));
    EXPECT_FALSE(producesResult(Op::kJump));
    EXPECT_FALSE(producesResult(Op::kHalt));
}

TEST(Opcode, EveryOpHasTraits)
{
    for (unsigned i = 0; i < kNumOps; ++i) {
        const Op op = static_cast<Op>(i);
        const OpTraits &traits = traitsOf(op);
        EXPECT_NE(traits.mnemonic, nullptr);
        EXPECT_GE(traits.parcels, 1u);
        EXPECT_LE(traits.parcels, 2u);
        // Config-dependent latency only for memory and branch ops.
        if (traits.latency == 0) {
            EXPECT_TRUE(traits.fu == FuClass::kMemory ||
                        traits.fu == FuClass::kBranch)
                << traits.mnemonic;
        }
        // latencyOf is always positive.
        EXPECT_GE(latencyOf(op, configM5BR2()), 1u) << traits.mnemonic;
    }
}

TEST(Opcode, MnemonicsUnique)
{
    for (unsigned i = 0; i < kNumOps; ++i) {
        for (unsigned j = i + 1; j < kNumOps; ++j) {
            EXPECT_STRNE(mnemonicOf(static_cast<Op>(i)),
                         mnemonicOf(static_cast<Op>(j)));
        }
    }
}

TEST(Opcode, FuClassNames)
{
    EXPECT_STREQ(fuClassName(FuClass::kFpAdd), "FpAdd");
    EXPECT_STREQ(fuClassName(FuClass::kMemory), "Memory");
    EXPECT_STREQ(fuClassName(FuClass::kTransfer), "Transfer");
}

} // namespace
} // namespace mfusim
