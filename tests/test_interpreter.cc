/**
 * @file
 * Functional interpreter tests: per-opcode semantics, control flow,
 * memory access, and trace recording.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "mfusim/codegen/interpreter.hh"

namespace mfusim
{
namespace
{

/** Run a tiny program and return the interpreter for inspection. */
struct Ran
{
    explicit Ran(const Program &p, std::size_t mem = 64)
        : interp(p, mem)
    {
        trace = interp.run("t");
    }
    Interpreter interp;
    DynTrace trace;
};

TEST(Interpreter, AddressArithmetic)
{
    Assembler as;
    as.aconst(A1, 10);
    as.aconst(A2, 3);
    as.aadd(A3, A1, A2);
    as.asub(A4, A1, A2);
    as.amul(A5, A1, A2);
    as.aaddi(A6, A1, -4);
    as.halt();
    Program p = as.finish();
    Ran r(p);
    EXPECT_EQ(r.interp.peekA(3), 13);
    EXPECT_EQ(r.interp.peekA(4), 7);
    EXPECT_EQ(r.interp.peekA(5), 30);
    EXPECT_EQ(r.interp.peekA(6), 6);
}

TEST(Interpreter, ScalarIntegerAndLogical)
{
    Assembler as;
    as.sconsti(S1, 0b1100);
    as.sconsti(S2, 0b1010);
    as.sadd(S3, S1, S2);
    as.ssub(S4, S1, S2);
    as.sand_(S5, S1, S2);
    as.sor_(S6, S1, S2);
    as.sxor_(S7, S1, S2);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekS(3), 22u);
    EXPECT_EQ(r.interp.peekS(4), 2u);
    EXPECT_EQ(r.interp.peekS(5), 0b1000u);
    EXPECT_EQ(r.interp.peekS(6), 0b1110u);
    EXPECT_EQ(r.interp.peekS(7), 0b0110u);
}

TEST(Interpreter, Shifts)
{
    Assembler as;
    as.sconsti(S1, 3);
    as.sshl(S2, S1, 4);
    as.sconsti(S3, -8);         // logical right shift of the pattern
    as.sshr(S4, S3, 1);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekS(2), 48u);
    EXPECT_EQ(r.interp.peekS(4), 0x7FFFFFFFFFFFFFFCu);
}

TEST(Interpreter, FloatingPoint)
{
    Assembler as;
    as.sconstf(S1, 2.5);
    as.sconstf(S2, 4.0);
    as.fadd(S3, S1, S2);
    as.fsub(S4, S1, S2);
    as.fmul(S5, S1, S2);
    as.frecip(S6, S2);
    as.halt();
    Ran r(as.finish());
    EXPECT_DOUBLE_EQ(r.interp.peekSF(3), 6.5);
    EXPECT_DOUBLE_EQ(r.interp.peekSF(4), -1.5);
    EXPECT_DOUBLE_EQ(r.interp.peekSF(5), 10.0);
    EXPECT_DOUBLE_EQ(r.interp.peekSF(6), 0.25);
}

TEST(Interpreter, FixAndFloatConversions)
{
    Assembler as;
    as.sconstf(S1, 7.9);
    as.sfix(S2, S1);            // truncates toward zero
    as.sconstf(S3, -7.9);
    as.sfix(S4, S3);
    as.sconsti(S5, 12);
    as.sfloat(S6, S5);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(std::int64_t(r.interp.peekS(2)), 7);
    EXPECT_EQ(std::int64_t(r.interp.peekS(4)), -7);
    EXPECT_DOUBLE_EQ(r.interp.peekSF(6), 12.0);
}

TEST(Interpreter, RegisterTransfers)
{
    Assembler as;
    as.aconst(A1, 42);
    as.smova(S1, A1);
    as.amovs(A2, S1);
    as.bmova(regB(3), A1);
    as.amovb(A3, regB(3));
    as.tmovs(regT(7), S1);
    as.smovt(S2, regT(7));
    as.smovs(S3, S2);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekA(2), 42);
    EXPECT_EQ(r.interp.peekA(3), 42);
    EXPECT_EQ(std::int64_t(r.interp.peekS(2)), 42);
    EXPECT_EQ(std::int64_t(r.interp.peekS(3)), 42);
}

TEST(Interpreter, LoadsAndStores)
{
    Assembler as;
    as.aconst(A1, 10);
    as.sconstf(S1, 3.25);
    as.storeS(A1, 2, S1);       // mem[12] = 3.25
    as.loadS(S2, A1, 2);
    as.aconst(A2, 777);
    as.storeA(A1, 3, A2);       // mem[13] = 777
    as.loadA(A3, A1, 3);
    as.halt();
    Ran r(as.finish());
    EXPECT_DOUBLE_EQ(r.interp.peekMemF(12), 3.25);
    EXPECT_DOUBLE_EQ(r.interp.peekSF(2), 3.25);
    EXPECT_EQ(std::int64_t(r.interp.peekMem(13)), 777);
    EXPECT_EQ(r.interp.peekA(3), 777);
}

TEST(Interpreter, OutOfBoundsLoadThrows)
{
    Assembler as;
    as.aconst(A1, 1000);
    as.loadS(S1, A1, 0);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 64);
    EXPECT_THROW(interp.run("t"), std::runtime_error);
}

TEST(Interpreter, NegativeAddressThrows)
{
    Assembler as;
    as.aconst(A1, 0);
    as.storeS(A1, -1, S1);
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 64);
    EXPECT_THROW(interp.run("t"), std::runtime_error);
}

TEST(Interpreter, ConditionalBranchSemantics)
{
    // Count down from 3: the loop body runs 3 times.
    Assembler as;
    as.aconst(A0, 3);
    as.aconst(A1, 0);
    const auto loop = as.here();
    as.aaddi(A1, A1, 1);
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekA(1), 3);
    // 2 setup + 3 iterations x 3 ops.
    EXPECT_EQ(r.trace.size(), 11u);
}

TEST(Interpreter, BranchOutcomesRecordedInTrace)
{
    Assembler as;
    as.aconst(A0, 2);
    const auto loop = as.here();
    as.aaddi(A0, A0, -1);
    as.branz(loop);
    as.halt();
    Ran r(as.finish());
    // Trace: aconst, (aaddi, branz taken), (aaddi, branz not-taken).
    ASSERT_EQ(r.trace.size(), 5u);
    EXPECT_TRUE(r.trace[2].taken);
    EXPECT_FALSE(r.trace[4].taken);
}

TEST(Interpreter, SignBranches)
{
    Assembler as;
    const auto neg = as.newLabel();
    as.aconst(A0, -5);
    as.bram(neg);               // taken: A0 < 0
    as.aconst(A2, 111);         // skipped
    as.bind(neg);
    as.aconst(A3, 222);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekA(2), 0);
    EXPECT_EQ(r.interp.peekA(3), 222);
}

TEST(Interpreter, SRegisterBranches)
{
    Assembler as;
    const auto done = as.newLabel();
    as.sconsti(S0, 0);
    as.brsz(done);              // taken
    as.aconst(A1, 1);           // skipped
    as.bind(done);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekA(1), 0);
}

TEST(Interpreter, JumpIsAlwaysTaken)
{
    Assembler as;
    const auto over = as.newLabel();
    as.jump(over);
    as.aconst(A1, 9);           // never executed
    as.bind(over);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.interp.peekA(1), 0);
    ASSERT_EQ(r.trace.size(), 1u);
    EXPECT_TRUE(r.trace[0].taken);
}

TEST(Interpreter, HaltNotRecordedInTrace)
{
    Assembler as;
    as.aconst(A1, 1);
    as.halt();
    Ran r(as.finish());
    EXPECT_EQ(r.trace.size(), 1u);
    EXPECT_EQ(r.trace[0].op, Op::kAConst);
}

TEST(Interpreter, DynOpLimitThrows)
{
    Assembler as;
    const auto forever = as.here();
    as.jump(forever);
    Program p = as.finish();
    Interpreter interp(p, 8);
    EXPECT_THROW(interp.run("t", 1000), std::runtime_error);
}

TEST(Interpreter, PokePeekMemory)
{
    Assembler as;
    as.halt();
    Program p = as.finish();
    Interpreter interp(p, 16);
    interp.pokeMemF(3, 2.75);
    interp.pokeMem(4, 0xDEAD);
    EXPECT_DOUBLE_EQ(interp.peekMemF(3), 2.75);
    EXPECT_EQ(interp.peekMem(4), 0xDEADu);
}

} // namespace
} // namespace mfusim
