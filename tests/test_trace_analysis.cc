/**
 * @file
 * Trace analysis tests: dependence distances, basic blocks, width
 * profiles on hand-built and benchmark traces.
 */

#include <gtest/gtest.h>

#include "mfusim/dataflow/limits.hh"
#include "mfusim/dataflow/trace_analysis.hh"
#include "mfusim/harness/trace_library.hh"
#include "test_util.hh"

namespace mfusim
{
namespace
{

using test::dyn;
using test::traceOf;

TEST(DependenceDistances, AdjacentChain)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),        // distance 1
        dyn(Op::kSMovS, S3, S2),        // distance 1
    });
    const DependenceStats deps = dependenceDistances(trace);
    EXPECT_EQ(deps.totalDeps, 2u);
    EXPECT_EQ(deps.histogram[0], 2u);
    EXPECT_DOUBLE_EQ(deps.adjacentFraction(), 1.0);
    EXPECT_DOUBLE_EQ(deps.meanDistance, 1.0);
}

TEST(DependenceDistances, FarDependence)
{
    DynTrace trace("far");
    trace.append(dyn(Op::kSConst, S1));
    for (int i = 0; i < 20; ++i)
        trace.append(dyn(Op::kAConst, A1));
    trace.append(dyn(Op::kSMovS, S2, S1));      // distance 21
    const DependenceStats deps = dependenceDistances(trace);
    EXPECT_EQ(deps.totalDeps, 1u);
    EXPECT_EQ(deps.longer, 1u);
    EXPECT_DOUBLE_EQ(deps.meanDistance, 21.0);
}

TEST(DependenceDistances, TwoSourcesCountSeparately)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kFAdd, S3, S1, S2),     // distances 2 and 1
    });
    const DependenceStats deps = dependenceDistances(trace);
    EXPECT_EQ(deps.totalDeps, 2u);
    EXPECT_EQ(deps.histogram[0], 1u);
    EXPECT_EQ(deps.histogram[1], 1u);
    EXPECT_DOUBLE_EQ(deps.meanDistance, 1.5);
}

TEST(DependenceDistances, ArchitecturalValuesExcluded)
{
    // A source never written inside the trace contributes nothing.
    const DynTrace trace = traceOf({
        dyn(Op::kSMovS, S2, S1),
    });
    EXPECT_EQ(dependenceDistances(trace).totalDeps, 0u);
}

TEST(BasicBlocks, CountsRunsBetweenBranches)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, true),      // block of 3
        dyn(Op::kSConst, S3),
        dyn(Op::kBrANZ, kNoReg, A0, kNoReg, false),     // block of 2
        dyn(Op::kSConst, S4),                           // tail block
    });
    const BasicBlockStats blocks = basicBlocks(trace);
    EXPECT_EQ(blocks.blocks, 3u);
    EXPECT_EQ(blocks.totalOps, 6u);
    EXPECT_EQ(blocks.maxLength, 3u);
    EXPECT_DOUBLE_EQ(blocks.meanLength(), 2.0);
}

TEST(WidthProfile, IndependentOpsAllStartAtOnce)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSConst, S2),
        dyn(Op::kSConst, S3),
    });
    const WidthProfile profile =
        widthProfile(trace, configM11BR5());
    EXPECT_EQ(profile.peakWidth, 3u);
    EXPECT_EQ(profile.levels, 1u);
    EXPECT_DOUBLE_EQ(profile.meanWidth, 3.0);
}

TEST(WidthProfile, ChainIsNarrow)
{
    const DynTrace trace = traceOf({
        dyn(Op::kSConst, S1),
        dyn(Op::kSMovS, S2, S1),
        dyn(Op::kSMovS, S3, S2),
    });
    const WidthProfile profile =
        widthProfile(trace, configM11BR5());
    EXPECT_EQ(profile.peakWidth, 1u);
    EXPECT_EQ(profile.levels, 3u);
    EXPECT_DOUBLE_EQ(profile.meanWidth, 1.0);
}

TEST(WidthProfile, MeanWidthMatchesPseudoDataflowRate)
{
    // meanWidth is by construction the pseudo-dataflow issue rate.
    for (int id : { 1, 5, 7 }) {
        const DynTrace &trace = TraceLibrary::instance().trace(id);
        const MachineConfig cfg = configM11BR5();
        const WidthProfile profile = widthProfile(trace, cfg);
        const LimitResult limit = computeLimits(trace, cfg);
        EXPECT_NEAR(profile.meanWidth, limit.pseudoRate, 1e-12)
            << "loop " << id;
    }
}

TEST(TraceAnalysis, ConsecutiveInstructionsAreRarelyIndependent)
{
    // The paper: "It is rare that 2 consecutive instructions are
    // independent and can issue simultaneously without blocking."
    // Every benchmark trace must show a substantial fraction of
    // adjacent (distance-1) dependences and a short mean distance.
    // (Note this measures expression-chain density, not loop-level
    // parallelism: the wide vector loop LL7 has *more* adjacent
    // dependences than the recurrence LL5 -- its iterations are
    // independent but its long expressions are serial chains.
    // Class parallelism shows up in the width profile instead.)
    for (int id = 1; id <= 14; ++id) {
        const DependenceStats deps =
            dependenceDistances(TraceLibrary::instance().trace(id));
        EXPECT_GT(deps.adjacentFraction(), 0.10) << "loop " << id;
        // Most dependences are short-range (within 15 dynamic ops);
        // the mean is skewed arbitrarily high by loop-invariant
        // constants read thousands of ops after their single write,
        // so assert on the bucketed fraction instead.
        std::uint64_t within = 0;
        for (std::uint64_t count : deps.histogram)
            within += count;
        EXPECT_GT(double(within), 0.5 * double(deps.totalDeps))
            << "loop " << id;
    }
}

TEST(TraceAnalysis, VectorLoopsAreWiderThanScalarLoops)
{
    const MachineConfig cfg = configM11BR5();
    const WidthProfile wide =
        widthProfile(TraceLibrary::instance().trace(7), cfg);
    const WidthProfile narrow =
        widthProfile(TraceLibrary::instance().trace(11), cfg);
    EXPECT_GT(wide.meanWidth, narrow.meanWidth);
    EXPECT_GT(wide.peakWidth, narrow.peakWidth);
}

TEST(TraceAnalysis, ReportMentionsKeyNumbers)
{
    const DynTrace &trace = TraceLibrary::instance().trace(1);
    const std::string report =
        analyzeTrace(trace, configM11BR5());
    EXPECT_NE(report.find("LL1"), std::string::npos);
    EXPECT_NE(report.find("mix:"), std::string::npos);
    EXPECT_NE(report.find("branches:"), std::string::npos);
    EXPECT_NE(report.find("dataflow width"), std::string::npos);
}

TEST(TraceAnalysis, EmptyTraceIsSafe)
{
    const DynTrace empty;
    EXPECT_EQ(dependenceDistances(empty).totalDeps, 0u);
    EXPECT_EQ(basicBlocks(empty).blocks, 0u);
    EXPECT_EQ(widthProfile(empty, configM11BR5()).levels, 0u);
    EXPECT_EQ(bufferDemand(empty, configM11BR5()).peakLiveValues, 0u);
}

TEST(BufferDemand, SerialChainNeedsOneBuffer)
{
    // Each value is consumed the moment it exists.
    DynTrace trace("chain");
    for (int i = 0; i < 50; ++i)
        trace.append(dyn(Op::kFAdd, S1, S1, S2));
    const BufferDemand demand =
        bufferDemand(trace, configM11BR5());
    EXPECT_EQ(demand.peakLiveValues, 1u);
}

TEST(BufferDemand, IndependentOpsAllLiveAtOnce)
{
    // n values produced at the same dataflow instant, none consumed.
    DynTrace trace("indep");
    for (int i = 0; i < 40; ++i)
        trace.append(dyn(Op::kFAdd, regS(1 + unsigned(i) % 7), S0,
                         S0));
    const BufferDemand demand =
        bufferDemand(trace, configM11BR5());
    EXPECT_EQ(demand.peakLiveValues, 40u);
}

TEST(BufferDemand, PredictsRuuSaturationScale)
{
    // The paper's Table 7/8 RUU sizes saturate around 40-50 entries;
    // the dataflow schedule's own buffering demand for the
    // vectorizable loops sits in the same range.
    const BufferDemand ll7 = bufferDemand(
        TraceLibrary::instance().trace(7), configM11BR5());
    EXPECT_GE(ll7.peakLiveValues, 15u);
    EXPECT_LE(ll7.peakLiveValues, 120u);
    // A recurrence loop needs far less buffering.
    const BufferDemand ll11 = bufferDemand(
        TraceLibrary::instance().trace(11), configM11BR5());
    EXPECT_LT(ll11.peakLiveValues, ll7.peakLiveValues);
}

} // namespace
} // namespace mfusim
