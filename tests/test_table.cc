/**
 * @file
 * ASCII table formatter tests.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "mfusim/core/table.hh"

namespace mfusim
{
namespace
{

TEST(AsciiTable, NumFormatting)
{
    EXPECT_EQ(AsciiTable::num(0.4449), "0.44");
    EXPECT_EQ(AsciiTable::num(0.445), "0.45");    // round half up-ish
    EXPECT_EQ(AsciiTable::num(1.2, 1), "1.2");
    EXPECT_EQ(AsciiTable::num(3.0, 0), "3");
}

TEST(AsciiTable, RendersHeaderAndRows)
{
    AsciiTable table;
    table.setHeader({ "Machine", "Rate" });
    table.addRow({ "Simple", "0.24" });
    table.addRow({ "CRAY-like", "0.44" });

    std::ostringstream os;
    table.print(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("Machine"), std::string::npos);
    EXPECT_NE(text.find("CRAY-like"), std::string::npos);
    EXPECT_NE(text.find("0.44"), std::string::npos);
    // Header underline present.
    EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(AsciiTable, ColumnsAligned)
{
    AsciiTable table;
    table.setHeader({ "A", "B" });
    table.addRow({ "xxxxxxxx", "1" });
    table.addRow({ "y", "2" });

    std::ostringstream os;
    table.print(os);
    // Column B starts at the same offset on both data lines.
    std::istringstream in(os.str());
    std::string header, rule, row1, row2;
    std::getline(in, header);
    std::getline(in, rule);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(row1.find('1'), row2.find('2'));
}

TEST(AsciiTable, RuleSeparatesGroups)
{
    AsciiTable table;
    table.setHeader({ "x" });
    table.addRow({ "1" });
    table.addRule();
    table.addRow({ "2" });

    std::ostringstream os;
    table.print(os);
    std::istringstream in(os.str());
    std::string line;
    int rules = 0;
    while (std::getline(in, line)) {
        if (!line.empty() && line.find_first_not_of('-') ==
            std::string::npos) {
            ++rules;
        }
    }
    EXPECT_EQ(rules, 2);    // header underline + explicit rule
}

TEST(AsciiTable, ShortRowsPadded)
{
    AsciiTable table;
    table.setHeader({ "a", "b", "c" });
    table.addRow({ "only-one" });
    std::ostringstream os;
    table.print(os);
    EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

} // namespace
} // namespace mfusim
