/**
 * @file
 * Unrolled-kernel tests: functional equivalence at every factor,
 * branch-count accounting, and the performance effects the paper
 * predicts for unrolling.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "mfusim/codegen/livermore.hh"
#include "mfusim/dataflow/limits.hh"
#include "mfusim/sim/ruu_sim.hh"
#include "mfusim/sim/scoreboard_sim.hh"

namespace mfusim
{
namespace
{

class Unrolled
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    int loopId() const { return std::get<0>(GetParam()); }
    int factor() const { return std::get<1>(GetParam()); }
};

TEST_P(Unrolled, MatchesReference)
{
    const Kernel kernel = buildUnrolledKernel(loopId(), factor());
    const KernelRun run = runKernel(kernel);
    EXPECT_GT(run.checkedCells, 0u);
    EXPECT_EQ(run.mismatches, 0u)
        << "loop " << loopId() << " x" << factor();
}

TEST_P(Unrolled, BranchCountDropsWithFactor)
{
    const Kernel kernel = buildUnrolledKernel(loopId(), factor());
    const KernelRun run = runKernel(kernel);
    const TraceStats stats = run.trace.stats();
    const Kernel base = buildUnrolledKernel(loopId(), 1);
    const TraceStats base_stats = runKernel(base).trace.stats();
    // Unrolling by f divides the dynamic branch count by ~f.
    EXPECT_LE(stats.branches,
              base_stats.branches / std::uint64_t(factor()) + 8)
        << "loop " << loopId() << " x" << factor();
    // And removes loop-overhead instructions overall.
    if (factor() > 1) {
        EXPECT_LT(stats.totalOps, base_stats.totalOps);
    }
}

TEST_P(Unrolled, FactorOneMatchesCanonicalKernel)
{
    const Kernel canonical = buildKernel(loopId());
    const Kernel rolled = buildUnrolledKernel(loopId(), 1);
    const KernelRun a = runKernel(canonical);
    const KernelRun b = runKernel(rolled);
    EXPECT_EQ(a.trace.size(), b.trace.size());
}

INSTANTIATE_TEST_SUITE_P(
    LoopsAndFactors, Unrolled,
    ::testing::Combine(::testing::ValuesIn(unrollableLoopIds()),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>> &info) {
        return "LL" + std::to_string(std::get<0>(info.param)) + "_x" +
            std::to_string(std::get<1>(info.param));
    });

TEST(UnrolledEffects, UnrollingRaisesTheDataflowLimit)
{
    // The paper: "loop unrolling will in some cases shorten the
    // critical path because some of the program's branches are
    // removed."  For the parallel loop LL1 the limit rises steeply.
    const MachineConfig cfg = configM11BR5();
    const double base =
        computeLimits(traceKernel(1), cfg).pseudoRate;
    const Kernel k8 = buildUnrolledKernel(1, 8);
    const double unrolled =
        computeLimits(runKernel(k8).trace, cfg).pseudoRate;
    EXPECT_GT(unrolled, base * 2.0);
}

TEST(UnrolledEffects, RecurrenceLimitBarelyMoves)
{
    // LL5's critical path is the data recurrence, not the branch
    // chain, so unrolling gains only the removed overhead ops.
    const MachineConfig cfg = configM11BR5();
    const Kernel k1 = buildUnrolledKernel(5, 1);
    const Kernel k8 = buildUnrolledKernel(5, 8);
    const double base =
        computeLimits(runKernel(k1).trace, cfg).pseudoCycles;
    const double unrolled =
        computeLimits(runKernel(k8).trace, cfg).pseudoCycles;
    // Critical path length barely changes (within 25%).
    EXPECT_GT(unrolled, base * 0.75);
}

TEST(UnrolledEffects, RuuExploitsUnrolledParallelism)
{
    // Unrolled LL1 bodies reuse the same S registers, so the
    // blocking machines stay WAW-bound while the RUU renames and
    // overlaps them.
    const MachineConfig cfg = configM11BR5();
    const Kernel k4 = buildUnrolledKernel(1, 4);
    const DynTrace trace = runKernel(k4).trace;

    ScoreboardSim cray(ScoreboardConfig::crayLike(), cfg);
    RuuSim ruu({ 4, 48, BusKind::kPerUnit }, cfg);
    const double cray_rate = cray.run(trace).issueRate();
    const double ruu_rate = ruu.run(trace).issueRate();
    EXPECT_GT(ruu_rate, cray_rate * 1.8);
}

TEST(UnrolledEffects, InvalidArgumentsRejected)
{
    EXPECT_THROW(buildUnrolledKernel(2, 4), std::invalid_argument);
    EXPECT_THROW(buildUnrolledKernel(1, 3), std::invalid_argument);
    EXPECT_THROW(buildUnrolledKernel(1, 16), std::invalid_argument);
}

} // namespace
} // namespace mfusim
